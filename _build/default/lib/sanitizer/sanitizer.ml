(** Bug-detection substrate: the KASAN/UBSAN/kernel-log stand-in.

    Simulated hypervisors report anomalies here; the agent drains the
    stream after every execution and classifies it — the "Detection
    Method" column of Table 6. *)

type event =
  | Ubsan of string (* undefined-behaviour sanitizer report *)
  | Kasan of string (* address sanitizer report *)
  | Assert_fail of string (* ASSERT()/BUG_ON() style failure *)
  | Host_crash of string (* the whole host went down (oops/hang) *)
  | Vm_crash of string (* the guest VM terminated abnormally *)
  | Gpf of string (* general protection fault in host context *)
  | Log_warn of string (* suspicious log line *)

let event_kind = function
  | Ubsan _ -> "UBSAN"
  | Kasan _ -> "KASAN"
  | Assert_fail _ -> "Assertion"
  | Host_crash _ -> "Host Crash"
  | Vm_crash _ -> "VM Crash"
  | Gpf _ -> "GP Fault"
  | Log_warn _ -> "Log Warning"

let event_message = function
  | Ubsan m | Kasan m | Assert_fail m | Host_crash m | Vm_crash m | Gpf m
  | Log_warn m ->
      m

(** Does this event terminate the current execution (and, for host
    crashes, require the watchdog to restart the machine)? *)
let is_fatal = function
  | Host_crash _ | Vm_crash _ | Gpf _ -> true
  | Ubsan _ | Kasan _ | Assert_fail _ | Log_warn _ -> false

(** Does this event indicate a potential vulnerability worth saving? *)
let is_reportable = function
  | Log_warn _ -> false
  | Ubsan _ | Kasan _ | Assert_fail _ | Host_crash _ | Vm_crash _ | Gpf _ ->
      true

type t = { mutable events : event list (* reversed *) }

let create () = { events = [] }

let record t e = t.events <- e :: t.events

let ubsan t fmt = Format.kasprintf (fun s -> record t (Ubsan s)) fmt
let kasan t fmt = Format.kasprintf (fun s -> record t (Kasan s)) fmt
let assert_fail t fmt = Format.kasprintf (fun s -> record t (Assert_fail s)) fmt
let host_crash t fmt = Format.kasprintf (fun s -> record t (Host_crash s)) fmt
let vm_crash t fmt = Format.kasprintf (fun s -> record t (Vm_crash s)) fmt
let gpf t fmt = Format.kasprintf (fun s -> record t (Gpf s)) fmt
let log_warn t fmt = Format.kasprintf (fun s -> record t (Log_warn s)) fmt

let events t = List.rev t.events

let drain t =
  let es = events t in
  t.events <- [];
  es

let has_fatal t = List.exists is_fatal t.events
let has_reportable t = List.exists is_reportable t.events

let pp_event ppf e =
  Format.fprintf ppf "[%s] %s" (event_kind e) (event_message e)
