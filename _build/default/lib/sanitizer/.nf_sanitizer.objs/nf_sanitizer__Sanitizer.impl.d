lib/sanitizer/sanitizer.ml: Format List
