lib/sanitizer/sanitizer.mli: Format
