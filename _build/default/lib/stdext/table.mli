(** Minimal aligned-column table rendering: every table in the evaluation
    harness is printed through this module so the bench output reads like
    the paper's tables. *)

type align = Left | Right

type t

(** [create ?aligns header] — missing alignments default to [Left]. *)
val create : ?aligns:align list -> string list -> t

val add_row : t -> string list -> unit

(** Insert a horizontal separator before the next row. *)
val add_sep : t -> unit

val render : t -> Format.formatter -> unit

(** [render] to stdout. *)
val print : t -> unit
