lib/stdext/bits.ml: Int64 Printf
