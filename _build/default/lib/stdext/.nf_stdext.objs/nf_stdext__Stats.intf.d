lib/stdext/stats.mli: Format
