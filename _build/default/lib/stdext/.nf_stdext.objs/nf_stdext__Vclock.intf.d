lib/stdext/vclock.mli: Format
