lib/stdext/table.ml: Array Format List String
