lib/stdext/chart.mli: Format
