lib/stdext/bits.mli:
