lib/stdext/chart.ml: Array Float Format List String
