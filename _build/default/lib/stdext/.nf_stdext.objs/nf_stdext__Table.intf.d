lib/stdext/table.mli: Format
