lib/stdext/rng.mli: Bytes
