lib/stdext/vclock.ml: Format Int64
