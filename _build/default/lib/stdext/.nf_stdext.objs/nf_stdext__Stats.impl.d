lib/stdext/stats.ml: Array Float Format String
