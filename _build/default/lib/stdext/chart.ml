(** ASCII line charts for the coverage-over-time figures.

    The bench renders Figs. 3 and 4 both as checkpoint rows and as a
    shared-axis chart so the saturation shapes are visible in a
    terminal. *)

type series = { label : string; points : (float * float) list }

(** Render [series] on a shared time axis: y is percent (0-100), x spans
    [0, max time].  Each series is drawn with its own glyph; collisions
    show the later series. *)
let render ?(width = 64) ?(height = 16) (all : series list) ppf =
  let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '~' |] in
  let max_t =
    List.fold_left
      (fun acc s -> List.fold_left (fun a (t, _) -> Float.max a t) acc s.points)
      1.0 all
  in
  let grid = Array.make_matrix height width ' ' in
  let plot glyph points =
    (* Linear interpolation between checkpoints so lines read as lines. *)
    let at t =
      let rec go = function
        | (t1, v1) :: ((t2, v2) :: _ as rest) ->
            if t >= t1 && t <= t2 then
              if t2 -. t1 < 1e-9 then v2
              else v1 +. ((v2 -. v1) *. (t -. t1) /. (t2 -. t1))
            else go rest
        | [ (_, v) ] -> v
        | [] -> 0.0
      in
      go points
    in
    match points with
    | [] -> ()
    | _ ->
        for col = 0 to width - 1 do
          let t = max_t *. float_of_int col /. float_of_int (width - 1) in
          let v = at t in
          let row =
            height - 1 - int_of_float (v /. 100.0 *. float_of_int (height - 1))
          in
          let row = max 0 (min (height - 1) row) in
          grid.(row).(col) <- glyph
        done
  in
  List.iteri
    (fun i s -> plot glyphs.(i mod Array.length glyphs) s.points)
    all;
  for row = 0 to height - 1 do
    let pct = 100 * (height - 1 - row) / (height - 1) in
    Format.fprintf ppf "%3d%% |" pct;
    for col = 0 to width - 1 do
      Format.fprintf ppf "%c" grid.(row).(col)
    done;
    Format.fprintf ppf "@."
  done;
  Format.fprintf ppf "     +%s@." (String.make width '-');
  Format.fprintf ppf "      0h%s%.0fh@."
    (String.make (max 1 (width - 6)) ' ')
    max_t;
  List.iteri
    (fun i s ->
      Format.fprintf ppf "      %c %s@." glyphs.(i mod Array.length glyphs)
        s.label)
    all
