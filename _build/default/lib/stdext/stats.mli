(** Statistics used by the evaluation harness, following Klees et al.
    (CCS'18): medians over repeated runs, 95% confidence intervals,
    two-sided Mann-Whitney U tests and Cohen's d effect sizes. *)

val mean : float array -> float

(** Sample variance (n-1 denominator). *)
val variance : float array -> float

val stddev : float array -> float

(** A sorted copy. *)
val sorted : float array -> float array

(** [percentile xs p] with linear interpolation, [p] in [0, 100]. *)
val percentile : float array -> float -> float

val median : float array -> float

(** Distribution-free 95% CI of the median; degenerates to (min, max) for
    n <= 5, matching how fuzzing papers report 5-run CIs. *)
val ci95_median : float array -> float * float

(** Two-sided Mann-Whitney U with tie correction; returns (U, p). *)
val mann_whitney_u : float array -> float array -> float * float

(** Cohen's d with pooled standard deviation; [infinity] when degenerate. *)
val cohens_d : float array -> float array -> float

module Histogram : sig
  type t = {
    lo : float;
    hi : float;
    bins : int array;
    mutable count : int;
  }

  val create : lo:float -> hi:float -> bins:int -> t

  (** Out-of-range samples are clamped into the edge bins. *)
  val add : t -> float -> unit

  val render : ?width:int -> t -> Format.formatter -> unit
end
