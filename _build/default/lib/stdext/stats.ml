(** Statistics used by the evaluation harness.

    The paper follows Klees et al. (CCS'18): medians over five runs, 95%
    confidence intervals, two-sided Mann-Whitney U tests and Cohen's d
    effect sizes.  This module implements exactly those estimators. *)

let mean xs =
  if Array.length xs = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) ** 2.0)) 0.0 xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let sorted xs =
  let c = Array.copy xs in
  Array.sort compare c;
  c

let percentile xs p =
  let c = sorted xs in
  let n = Array.length c in
  if n = 0 then 0.0
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
    let frac = rank -. floor rank in
    (c.(lo) *. (1.0 -. frac)) +. (c.(hi) *. frac)
  end

let median xs = percentile xs 50.0

(** 95% confidence interval of the median via the binomial (distribution
    free) method for small samples; degenerates to (min, max) for n <= 5,
    matching how fuzzing papers report 5-run CIs. *)
let ci95_median xs =
  let c = sorted xs in
  let n = Array.length c in
  if n = 0 then (0.0, 0.0)
  else if n <= 5 then (c.(0), c.(n - 1))
  else begin
    (* Normal approximation of binomial order statistics. *)
    let nf = float_of_int n in
    let delta = 1.96 *. sqrt (nf /. 4.0) in
    let lo = max 0 (int_of_float (floor ((nf /. 2.0) -. delta))) in
    let hi = min (n - 1) (int_of_float (ceil ((nf /. 2.0) +. delta))) in
    (c.(lo), c.(hi))
  end

(** Two-sided Mann-Whitney U test; returns (u, approximate p-value) using
    the normal approximation with tie correction — adequate for the 5-vs-5
    comparisons used in the evaluation. *)
let mann_whitney_u a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 || nb = 0 then (0.0, 1.0)
  else begin
    let all = Array.append (Array.map (fun x -> (x, `A)) a) (Array.map (fun x -> (x, `B)) b) in
    Array.sort (fun (x, _) (y, _) -> compare x y) all;
    let n = Array.length all in
    let ranks = Array.make n 0.0 in
    (* Average ranks over ties. *)
    let i = ref 0 in
    while !i < n do
      let j = ref !i in
      while !j < n - 1 && fst all.(!j + 1) = fst all.(!i) do incr j done;
      let avg = float_of_int (!i + !j + 2) /. 2.0 in
      for k = !i to !j do ranks.(k) <- avg done;
      i := !j + 1
    done;
    let ra = ref 0.0 in
    Array.iteri (fun k (_, tag) -> if tag = `A then ra := !ra +. ranks.(k)) all;
    let naf = float_of_int na and nbf = float_of_int nb in
    let u = !ra -. (naf *. (naf +. 1.0) /. 2.0) in
    let mu = naf *. nbf /. 2.0 in
    let sigma = sqrt (naf *. nbf *. (naf +. nbf +. 1.0) /. 12.0) in
    if sigma = 0.0 then (u, 1.0)
    else begin
      let z = Float.abs ((u -. mu) /. sigma) in
      (* Two-sided p from the normal tail, via the complementary error
         function approximation (Abramowitz & Stegun 7.1.26). *)
      let erfc x =
        let t = 1.0 /. (1.0 +. (0.3275911 *. x)) in
        let poly =
          t
          *. (0.254829592
             +. (t
                *. (-0.284496736
                   +. (t *. (1.421413741 +. (t *. (-1.453152027 +. (t *. 1.061405429))))))))
        in
        poly *. exp (-.x *. x)
      in
      let p = erfc (z /. sqrt 2.0) in
      (u, p)
    end
  end

(** Cohen's d effect size with pooled standard deviation. *)
let cohens_d a b =
  let na = Array.length a and nb = Array.length b in
  if na < 2 || nb < 2 then infinity
  else begin
    let va = variance a and vb = variance b in
    let pooled =
      sqrt
        (((float_of_int (na - 1) *. va) +. (float_of_int (nb - 1) *. vb))
        /. float_of_int (na + nb - 2))
    in
    if pooled = 0.0 then infinity else (mean a -. mean b) /. pooled
  end

(** Fixed-width histogram over [lo, hi); used to render the Fig. 5 violin
    plots as ASCII distributions. *)
module Histogram = struct
  type t = {
    lo : float;
    hi : float;
    bins : int array;
    mutable count : int;
  }

  let create ~lo ~hi ~bins = { lo; hi; bins = Array.make bins 0; count = 0 }

  let add t x =
    let nbins = Array.length t.bins in
    let idx =
      int_of_float ((x -. t.lo) /. (t.hi -. t.lo) *. float_of_int nbins)
    in
    let idx = max 0 (min (nbins - 1) idx) in
    t.bins.(idx) <- t.bins.(idx) + 1;
    t.count <- t.count + 1

  let render ?(width = 50) t ppf =
    let maxv = Array.fold_left max 1 t.bins in
    let nbins = Array.length t.bins in
    for i = 0 to nbins - 1 do
      let lo = t.lo +. ((t.hi -. t.lo) *. float_of_int i /. float_of_int nbins) in
      let bar = t.bins.(i) * width / maxv in
      Format.fprintf ppf "%8.1f | %s (%d)@." lo (String.make bar '#') t.bins.(i)
    done
end
