(** 64-bit field and bit manipulation helpers.

    VMCS and VMCB fields are at most 64 bits wide; everything in the
    framework represents field values as [int64]. *)

(** [bit n] is a value with only bit [n] set. *)
val bit : int -> int64

val is_set : int64 -> int -> bool
val set : int64 -> int -> int64
val clear : int64 -> int -> int64
val flip : int64 -> int -> int64

(** [assign v n b] sets or clears bit [n] of [v] according to [b]. *)
val assign : int64 -> int -> bool -> int64

(** [mask width] has the low [width] bits set; [mask 64] is all ones. *)
val mask : int -> int64

(** Truncate a value to [width] bits. *)
val truncate : int64 -> int -> int64

(** [extract v ~lo ~width] reads a bit-field. *)
val extract : int64 -> lo:int -> width:int -> int64

(** [insert v ~lo ~width field] writes a bit-field. *)
val insert : int64 -> lo:int -> width:int -> int64 -> int64

val popcount : int64 -> int

(** Number of differing bits, restricted to [width] (default 64). *)
val hamming : ?width:int -> int64 -> int64 -> int

(** x86 canonical-address check: bits 63..47 must sign-extend bit 47. *)
val is_canonical : int64 -> bool

(** Is the value aligned to [2^n] bytes? *)
val is_aligned : int64 -> int -> bool

(** Does the value fit in [width] bits? *)
val fits : int64 -> int -> bool

val to_hex : int64 -> string
