(** Minimal aligned-column table rendering for the experiment harness.

    Every table in the evaluation is printed through this module so the
    bench output looks like the paper's tables. *)

type align = Left | Right

type t = {
  header : string list;
  aligns : align list;
  mutable rows : string list list; (* reversed *)
}

let create ?(aligns = []) header = { header; aligns; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let add_sep t = t.rows <- [ "\x00sep" ] :: t.rows

let align_of t i =
  match List.nth_opt t.aligns i with Some a -> a | None -> Left

let render t ppf =
  let rows = List.rev t.rows in
  let all = t.header :: List.filter (fun r -> r <> [ "\x00sep" ]) rows in
  let ncols = List.fold_left (fun a r -> max a (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri
      (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  List.iter measure all;
  let pad i cell =
    let w = widths.(i) in
    let n = w - String.length cell in
    match align_of t i with
    | Left -> cell ^ String.make n ' '
    | Right -> String.make n ' ' ^ cell
  in
  let print_row row =
    let cells = List.mapi pad row in
    Format.fprintf ppf "| %s |@." (String.concat " | " cells)
  in
  let sep () =
    let dashes = Array.to_list (Array.map (fun w -> String.make w '-') widths) in
    Format.fprintf ppf "|-%s-|@." (String.concat "-+-" dashes)
  in
  print_row t.header;
  sep ();
  List.iter
    (fun row -> if row = [ "\x00sep" ] then sep () else print_row row)
    rows

let print t = render t Format.std_formatter
