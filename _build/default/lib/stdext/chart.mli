(** ASCII line charts for the coverage-over-time figures (3 and 4). *)

type series = { label : string; points : (float * float) list }

(** Render series on a shared axis: y is percent (0–100), x spans
    [0, max time].  Each series gets its own glyph; a legend follows. *)
val render :
  ?width:int -> ?height:int -> series list -> Format.formatter -> unit
