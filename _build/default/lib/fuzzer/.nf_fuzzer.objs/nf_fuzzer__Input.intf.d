lib/fuzzer/input.mli: Bytes Nf_stdext
