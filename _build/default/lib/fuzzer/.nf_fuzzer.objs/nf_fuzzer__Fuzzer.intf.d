lib/fuzzer/fuzzer.mli: Bytes Nf_coverage
