lib/fuzzer/input.ml: Bytes Char Int64 Nf_stdext
