lib/fuzzer/fuzzer.ml: Array Bytes Input Nf_coverage Nf_stdext
