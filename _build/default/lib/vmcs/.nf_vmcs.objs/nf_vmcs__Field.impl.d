lib/vmcs/field.ml: Array Hashtbl List Nf_x86 Printf
