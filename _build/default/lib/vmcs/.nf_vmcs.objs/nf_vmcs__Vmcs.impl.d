lib/vmcs/vmcs.ml: Array Bytes Char Controls Field Format Int64 List Nf_stdext
