lib/vmcs/vmcs.mli: Bytes Controls Field Format
