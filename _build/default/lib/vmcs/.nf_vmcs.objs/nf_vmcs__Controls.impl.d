lib/vmcs/controls.ml: Int64 Nf_stdext
