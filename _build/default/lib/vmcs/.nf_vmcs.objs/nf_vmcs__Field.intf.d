lib/vmcs/field.mli: Nf_x86
