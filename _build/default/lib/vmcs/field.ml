(** VMCS field layout.

    The virtual-machine control structure is modelled as a fixed table of
    165 fields — the figure the paper uses for the Fig. 5 experiment ("an
    8,000-bit VM state across 165 fields with predefined widths").  Each
    field carries its Intel-style encoding, width class and area.  Field
    identity is a dense integer index into the table, which keeps the store
    a flat array and the bit-level serialisation deterministic. *)

type width = W16 | W32 | W64 | Natural

(* Natural-width fields are 64-bit on a 64-bit processor. *)
let bits_of_width = function W16 -> 16 | W32 -> 32 | W64 | Natural -> 64

type group =
  | Control (* VM-execution, entry and exit controls and addresses *)
  | Exit_info (* read-only exit information *)
  | Guest (* guest-state area *)
  | Host (* host-state area *)

let group_name = function
  | Control -> "control"
  | Exit_info -> "exit-info"
  | Guest -> "guest"
  | Host -> "host"

type t = int (* dense index into [table] *)

type info = {
  index : int;
  name : string;
  encoding : int;
  width : width;
  group : group;
}

let defs =
  [
    (* --- 16-bit control fields --- *)
    ("VPID", 0x0000, W16, Control);
    ("POSTED_INTR_NV", 0x0002, W16, Control);
    ("EPTP_INDEX", 0x0004, W16, Control);
    (* --- 16-bit guest-state fields --- *)
    ("GUEST_ES_SELECTOR", 0x0800, W16, Guest);
    ("GUEST_CS_SELECTOR", 0x0802, W16, Guest);
    ("GUEST_SS_SELECTOR", 0x0804, W16, Guest);
    ("GUEST_DS_SELECTOR", 0x0806, W16, Guest);
    ("GUEST_FS_SELECTOR", 0x0808, W16, Guest);
    ("GUEST_GS_SELECTOR", 0x080A, W16, Guest);
    ("GUEST_LDTR_SELECTOR", 0x080C, W16, Guest);
    ("GUEST_TR_SELECTOR", 0x080E, W16, Guest);
    ("GUEST_INTR_STATUS", 0x0810, W16, Guest);
    ("GUEST_PML_INDEX", 0x0812, W16, Guest);
    (* --- 16-bit host-state fields --- *)
    ("HOST_ES_SELECTOR", 0x0C00, W16, Host);
    ("HOST_CS_SELECTOR", 0x0C02, W16, Host);
    ("HOST_SS_SELECTOR", 0x0C04, W16, Host);
    ("HOST_DS_SELECTOR", 0x0C06, W16, Host);
    ("HOST_FS_SELECTOR", 0x0C08, W16, Host);
    ("HOST_GS_SELECTOR", 0x0C0A, W16, Host);
    ("HOST_TR_SELECTOR", 0x0C0C, W16, Host);
    (* --- 64-bit control fields --- *)
    ("IO_BITMAP_A", 0x2000, W64, Control);
    ("IO_BITMAP_B", 0x2002, W64, Control);
    ("MSR_BITMAP", 0x2004, W64, Control);
    ("EXIT_MSR_STORE_ADDR", 0x2006, W64, Control);
    ("EXIT_MSR_LOAD_ADDR", 0x2008, W64, Control);
    ("ENTRY_MSR_LOAD_ADDR", 0x200A, W64, Control);
    ("EXECUTIVE_VMCS_PTR", 0x200C, W64, Control);
    ("PML_ADDRESS", 0x200E, W64, Control);
    ("TSC_OFFSET", 0x2010, W64, Control);
    ("VIRTUAL_APIC_PAGE_ADDR", 0x2012, W64, Control);
    ("APIC_ACCESS_ADDR", 0x2014, W64, Control);
    ("POSTED_INTR_DESC_ADDR", 0x2016, W64, Control);
    ("VM_FUNCTION_CONTROL", 0x2018, W64, Control);
    ("EPT_POINTER", 0x201A, W64, Control);
    ("EOI_EXIT_BITMAP0", 0x201C, W64, Control);
    ("EOI_EXIT_BITMAP1", 0x201E, W64, Control);
    ("EOI_EXIT_BITMAP2", 0x2020, W64, Control);
    ("EOI_EXIT_BITMAP3", 0x2022, W64, Control);
    ("EPTP_LIST_ADDR", 0x2024, W64, Control);
    ("VMREAD_BITMAP", 0x2026, W64, Control);
    ("VMWRITE_BITMAP", 0x2028, W64, Control);
    ("VE_INFO_ADDR", 0x202A, W64, Control);
    ("XSS_EXIT_BITMAP", 0x202C, W64, Control);
    ("ENCLS_EXITING_BITMAP", 0x202E, W64, Control);
    ("SPP_TABLE_ADDR", 0x2030, W64, Control);
    ("TSC_MULTIPLIER", 0x2032, W64, Control);
    ("TERTIARY_PROC_CTLS", 0x2034, W64, Control);
    ("HLAT_POINTER", 0x2040, W64, Control);
    (* --- 64-bit read-only data --- *)
    ("GUEST_PHYSICAL_ADDRESS", 0x2400, W64, Exit_info);
    (* --- 64-bit guest-state fields --- *)
    ("VMCS_LINK_POINTER", 0x2800, W64, Guest);
    ("GUEST_IA32_DEBUGCTL", 0x2802, W64, Guest);
    ("GUEST_IA32_PAT", 0x2804, W64, Guest);
    ("GUEST_IA32_EFER", 0x2806, W64, Guest);
    ("GUEST_IA32_PERF_GLOBAL_CTRL", 0x2808, W64, Guest);
    ("GUEST_PDPTE0", 0x280A, W64, Guest);
    ("GUEST_PDPTE1", 0x280C, W64, Guest);
    ("GUEST_PDPTE2", 0x280E, W64, Guest);
    ("GUEST_PDPTE3", 0x2810, W64, Guest);
    ("GUEST_IA32_BNDCFGS", 0x2812, W64, Guest);
    ("GUEST_IA32_RTIT_CTL", 0x2814, W64, Guest);
    ("GUEST_SSP", 0x2816, W64, Guest);
    (* --- 64-bit host-state fields --- *)
    ("HOST_IA32_PAT", 0x2C00, W64, Host);
    ("HOST_IA32_EFER", 0x2C02, W64, Host);
    ("HOST_IA32_PERF_GLOBAL_CTRL", 0x2C04, W64, Host);
    ("HOST_SSP", 0x2C06, W64, Host);
    (* --- 32-bit control fields --- *)
    ("PIN_BASED_CTLS", 0x4000, W32, Control);
    ("PROC_BASED_CTLS", 0x4002, W32, Control);
    ("EXCEPTION_BITMAP", 0x4004, W32, Control);
    ("PF_ERROR_CODE_MASK", 0x4006, W32, Control);
    ("PF_ERROR_CODE_MATCH", 0x4008, W32, Control);
    ("CR3_TARGET_COUNT", 0x400A, W32, Control);
    ("EXIT_CTLS", 0x400C, W32, Control);
    ("EXIT_MSR_STORE_COUNT", 0x400E, W32, Control);
    ("EXIT_MSR_LOAD_COUNT", 0x4010, W32, Control);
    ("ENTRY_CTLS", 0x4012, W32, Control);
    ("ENTRY_MSR_LOAD_COUNT", 0x4014, W32, Control);
    ("ENTRY_INTR_INFO", 0x4016, W32, Control);
    ("ENTRY_EXCEPTION_ERROR_CODE", 0x4018, W32, Control);
    ("ENTRY_INSTRUCTION_LEN", 0x401A, W32, Control);
    ("TPR_THRESHOLD", 0x401C, W32, Control);
    ("PROC_BASED_CTLS2", 0x401E, W32, Control);
    ("PLE_GAP", 0x4020, W32, Control);
    ("PLE_WINDOW", 0x4022, W32, Control);
    (* --- 32-bit read-only data --- *)
    ("VM_INSTRUCTION_ERROR", 0x4400, W32, Exit_info);
    ("EXIT_REASON", 0x4402, W32, Exit_info);
    ("EXIT_INTR_INFO", 0x4404, W32, Exit_info);
    ("EXIT_INTR_ERROR_CODE", 0x4406, W32, Exit_info);
    ("IDT_VECTORING_INFO", 0x4408, W32, Exit_info);
    ("IDT_VECTORING_ERROR_CODE", 0x440A, W32, Exit_info);
    ("EXIT_INSTRUCTION_LEN", 0x440C, W32, Exit_info);
    ("EXIT_INSTRUCTION_INFO", 0x440E, W32, Exit_info);
    (* --- 32-bit guest-state fields --- *)
    ("GUEST_ES_LIMIT", 0x4800, W32, Guest);
    ("GUEST_CS_LIMIT", 0x4802, W32, Guest);
    ("GUEST_SS_LIMIT", 0x4804, W32, Guest);
    ("GUEST_DS_LIMIT", 0x4806, W32, Guest);
    ("GUEST_FS_LIMIT", 0x4808, W32, Guest);
    ("GUEST_GS_LIMIT", 0x480A, W32, Guest);
    ("GUEST_LDTR_LIMIT", 0x480C, W32, Guest);
    ("GUEST_TR_LIMIT", 0x480E, W32, Guest);
    ("GUEST_GDTR_LIMIT", 0x4810, W32, Guest);
    ("GUEST_IDTR_LIMIT", 0x4812, W32, Guest);
    ("GUEST_ES_AR", 0x4814, W32, Guest);
    ("GUEST_CS_AR", 0x4816, W32, Guest);
    ("GUEST_SS_AR", 0x4818, W32, Guest);
    ("GUEST_DS_AR", 0x481A, W32, Guest);
    ("GUEST_FS_AR", 0x481C, W32, Guest);
    ("GUEST_GS_AR", 0x481E, W32, Guest);
    ("GUEST_LDTR_AR", 0x4820, W32, Guest);
    ("GUEST_TR_AR", 0x4822, W32, Guest);
    ("GUEST_INTERRUPTIBILITY", 0x4824, W32, Guest);
    ("GUEST_ACTIVITY_STATE", 0x4826, W32, Guest);
    ("GUEST_SMBASE", 0x4828, W32, Guest);
    ("GUEST_SYSENTER_CS", 0x482A, W32, Guest);
    ("PREEMPTION_TIMER_VALUE", 0x482E, W32, Guest);
    (* --- 32-bit host-state fields --- *)
    ("HOST_SYSENTER_CS", 0x4C00, W32, Host);
    (* --- natural-width control fields --- *)
    ("CR0_GUEST_HOST_MASK", 0x6000, Natural, Control);
    ("CR4_GUEST_HOST_MASK", 0x6002, Natural, Control);
    ("CR0_READ_SHADOW", 0x6004, Natural, Control);
    ("CR4_READ_SHADOW", 0x6006, Natural, Control);
    ("CR3_TARGET_VALUE0", 0x6008, Natural, Control);
    ("CR3_TARGET_VALUE1", 0x600A, Natural, Control);
    ("CR3_TARGET_VALUE2", 0x600C, Natural, Control);
    ("CR3_TARGET_VALUE3", 0x600E, Natural, Control);
    (* --- natural-width read-only data --- *)
    ("EXIT_QUALIFICATION", 0x6400, Natural, Exit_info);
    ("IO_RCX", 0x6402, Natural, Exit_info);
    ("IO_RSI", 0x6404, Natural, Exit_info);
    ("IO_RDI", 0x6406, Natural, Exit_info);
    ("IO_RIP", 0x6408, Natural, Exit_info);
    ("GUEST_LINEAR_ADDRESS", 0x640A, Natural, Exit_info);
    (* --- natural-width guest-state fields --- *)
    ("GUEST_CR0", 0x6800, Natural, Guest);
    ("GUEST_CR3", 0x6802, Natural, Guest);
    ("GUEST_CR4", 0x6804, Natural, Guest);
    ("GUEST_ES_BASE", 0x6806, Natural, Guest);
    ("GUEST_CS_BASE", 0x6808, Natural, Guest);
    ("GUEST_SS_BASE", 0x680A, Natural, Guest);
    ("GUEST_DS_BASE", 0x680C, Natural, Guest);
    ("GUEST_FS_BASE", 0x680E, Natural, Guest);
    ("GUEST_GS_BASE", 0x6810, Natural, Guest);
    ("GUEST_LDTR_BASE", 0x6812, Natural, Guest);
    ("GUEST_TR_BASE", 0x6814, Natural, Guest);
    ("GUEST_GDTR_BASE", 0x6816, Natural, Guest);
    ("GUEST_IDTR_BASE", 0x6818, Natural, Guest);
    ("GUEST_DR7", 0x681A, Natural, Guest);
    ("GUEST_RSP", 0x681C, Natural, Guest);
    ("GUEST_RIP", 0x681E, Natural, Guest);
    ("GUEST_RFLAGS", 0x6820, Natural, Guest);
    ("GUEST_PENDING_DBG_EXCEPTIONS", 0x6822, Natural, Guest);
    ("GUEST_SYSENTER_ESP", 0x6824, Natural, Guest);
    ("GUEST_SYSENTER_EIP", 0x6826, Natural, Guest);
    ("GUEST_S_CET", 0x6828, Natural, Guest);
    ("GUEST_INTR_SSP_TABLE", 0x682A, Natural, Guest);
    (* --- natural-width host-state fields --- *)
    ("HOST_CR0", 0x6C00, Natural, Host);
    ("HOST_CR3", 0x6C02, Natural, Host);
    ("HOST_CR4", 0x6C04, Natural, Host);
    ("HOST_FS_BASE", 0x6C06, Natural, Host);
    ("HOST_GS_BASE", 0x6C08, Natural, Host);
    ("HOST_TR_BASE", 0x6C0A, Natural, Host);
    ("HOST_GDTR_BASE", 0x6C0C, Natural, Host);
    ("HOST_IDTR_BASE", 0x6C0E, Natural, Host);
    ("HOST_SYSENTER_ESP", 0x6C10, Natural, Host);
    ("HOST_SYSENTER_EIP", 0x6C12, Natural, Host);
    ("HOST_RSP", 0x6C14, Natural, Host);
    ("HOST_RIP", 0x6C16, Natural, Host);
    ("HOST_S_CET", 0x6C18, Natural, Host);
    ("HOST_INTR_SSP_TABLE", 0x6C1A, Natural, Host);
  ]

let table =
  Array.of_list
    (List.mapi
       (fun index (name, encoding, width, group) ->
         { index; name; encoding; width; group })
       defs)

let count = Array.length table

let info (f : t) = table.(f)
let name f = (info f).name
let width f = (info f).width
let group f = (info f).group
let encoding f = (info f).encoding
let bits f = bits_of_width (width f)

let total_bits =
  Array.fold_left (fun acc i -> acc + bits_of_width i.width) 0 table

let all : t list = List.init count (fun i -> i)

let by_name : (string, t) Hashtbl.t =
  let h = Hashtbl.create 256 in
  Array.iter (fun i -> Hashtbl.replace h i.name i.index) table;
  h

let find_exn n =
  match Hashtbl.find_opt by_name n with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Vmcs field %S not defined" n)

let by_encoding : (int, t) Hashtbl.t =
  let h = Hashtbl.create 256 in
  Array.iter (fun i -> Hashtbl.replace h i.encoding i.index) table;
  h

let of_encoding e = Hashtbl.find_opt by_encoding e

let in_group g = List.filter (fun f -> group f = g) all

(* Named constants for the fields the rest of the framework manipulates
   directly.  Resolved once at module initialisation. *)

let vpid = find_exn "VPID"
let posted_intr_nv = find_exn "POSTED_INTR_NV"
let io_bitmap_a = find_exn "IO_BITMAP_A"
let io_bitmap_b = find_exn "IO_BITMAP_B"
let msr_bitmap = find_exn "MSR_BITMAP"
let exit_msr_store_addr = find_exn "EXIT_MSR_STORE_ADDR"
let exit_msr_load_addr = find_exn "EXIT_MSR_LOAD_ADDR"
let entry_msr_load_addr = find_exn "ENTRY_MSR_LOAD_ADDR"
let virtual_apic_page_addr = find_exn "VIRTUAL_APIC_PAGE_ADDR"
let apic_access_addr = find_exn "APIC_ACCESS_ADDR"
let posted_intr_desc_addr = find_exn "POSTED_INTR_DESC_ADDR"
let ept_pointer = find_exn "EPT_POINTER"
let tsc_offset = find_exn "TSC_OFFSET"
let vmcs_link_pointer = find_exn "VMCS_LINK_POINTER"
let guest_ia32_debugctl = find_exn "GUEST_IA32_DEBUGCTL"
let guest_ia32_pat = find_exn "GUEST_IA32_PAT"
let guest_ia32_efer = find_exn "GUEST_IA32_EFER"
let guest_pdpte0 = find_exn "GUEST_PDPTE0"
let host_ia32_pat = find_exn "HOST_IA32_PAT"
let host_ia32_efer = find_exn "HOST_IA32_EFER"
let pin_based_ctls = find_exn "PIN_BASED_CTLS"
let proc_based_ctls = find_exn "PROC_BASED_CTLS"
let proc_based_ctls2 = find_exn "PROC_BASED_CTLS2"
let exception_bitmap = find_exn "EXCEPTION_BITMAP"
let cr3_target_count = find_exn "CR3_TARGET_COUNT"
let exit_ctls = find_exn "EXIT_CTLS"
let exit_msr_store_count = find_exn "EXIT_MSR_STORE_COUNT"
let exit_msr_load_count = find_exn "EXIT_MSR_LOAD_COUNT"
let entry_ctls = find_exn "ENTRY_CTLS"
let entry_msr_load_count = find_exn "ENTRY_MSR_LOAD_COUNT"
let entry_intr_info = find_exn "ENTRY_INTR_INFO"
let entry_exception_error_code = find_exn "ENTRY_EXCEPTION_ERROR_CODE"
let entry_instruction_len = find_exn "ENTRY_INSTRUCTION_LEN"
let tpr_threshold = find_exn "TPR_THRESHOLD"
let vm_instruction_error = find_exn "VM_INSTRUCTION_ERROR"
let exit_reason = find_exn "EXIT_REASON"
let exit_qualification = find_exn "EXIT_QUALIFICATION"
let exit_intr_info = find_exn "EXIT_INTR_INFO"
let guest_interruptibility = find_exn "GUEST_INTERRUPTIBILITY"
let guest_activity_state = find_exn "GUEST_ACTIVITY_STATE"
let guest_sysenter_cs = find_exn "GUEST_SYSENTER_CS"
let guest_sysenter_esp = find_exn "GUEST_SYSENTER_ESP"
let guest_sysenter_eip = find_exn "GUEST_SYSENTER_EIP"
let preemption_timer_value = find_exn "PREEMPTION_TIMER_VALUE"
let cr0_guest_host_mask = find_exn "CR0_GUEST_HOST_MASK"
let cr4_guest_host_mask = find_exn "CR4_GUEST_HOST_MASK"
let cr0_read_shadow = find_exn "CR0_READ_SHADOW"
let cr4_read_shadow = find_exn "CR4_READ_SHADOW"
let guest_cr0 = find_exn "GUEST_CR0"
let guest_cr3 = find_exn "GUEST_CR3"
let guest_cr4 = find_exn "GUEST_CR4"
let guest_dr7 = find_exn "GUEST_DR7"
let guest_rsp = find_exn "GUEST_RSP"
let guest_rip = find_exn "GUEST_RIP"
let guest_rflags = find_exn "GUEST_RFLAGS"
let guest_pending_dbg = find_exn "GUEST_PENDING_DBG_EXCEPTIONS"
let guest_gdtr_base = find_exn "GUEST_GDTR_BASE"
let guest_idtr_base = find_exn "GUEST_IDTR_BASE"
let guest_gdtr_limit = find_exn "GUEST_GDTR_LIMIT"
let guest_idtr_limit = find_exn "GUEST_IDTR_LIMIT"
let host_cr0 = find_exn "HOST_CR0"
let host_cr3 = find_exn "HOST_CR3"
let host_cr4 = find_exn "HOST_CR4"
let host_rsp = find_exn "HOST_RSP"
let host_rip = find_exn "HOST_RIP"
let host_fs_base = find_exn "HOST_FS_BASE"
let host_gs_base = find_exn "HOST_GS_BASE"
let host_tr_base = find_exn "HOST_TR_BASE"
let host_gdtr_base = find_exn "HOST_GDTR_BASE"
let host_idtr_base = find_exn "HOST_IDTR_BASE"
let host_sysenter_cs = find_exn "HOST_SYSENTER_CS"
let host_sysenter_esp = find_exn "HOST_SYSENTER_ESP"
let host_sysenter_eip = find_exn "HOST_SYSENTER_EIP"
let host_cs_selector = find_exn "HOST_CS_SELECTOR"
let host_tr_selector = find_exn "HOST_TR_SELECTOR"
let host_ss_selector = find_exn "HOST_SS_SELECTOR"

(* Per-segment field lookup. *)
let seg_name r = Nf_x86.Seg.register_name r
let guest_selector r = find_exn (Printf.sprintf "GUEST_%s_SELECTOR" (seg_name r))
let guest_base r = find_exn (Printf.sprintf "GUEST_%s_BASE" (seg_name r))
let guest_limit r = find_exn (Printf.sprintf "GUEST_%s_LIMIT" (seg_name r))
let guest_ar r = find_exn (Printf.sprintf "GUEST_%s_AR" (seg_name r))

let host_selector r =
  match (r : Nf_x86.Seg.register) with
  | ES | CS | SS | DS | FS | GS | TR ->
      find_exn (Printf.sprintf "HOST_%s_SELECTOR" (seg_name r))
  | LDTR -> invalid_arg "host has no LDTR selector field"

(* Guest activity states (SDM Vol. 3C §24.4.2). *)
module Activity = struct
  let active = 0L
  let hlt = 1L
  let shutdown = 2L
  let wait_for_sipi = 3L

  let name = function
    | 0L -> "ACTIVE"
    | 1L -> "HLT"
    | 2L -> "SHUTDOWN"
    | 3L -> "WAIT_FOR_SIPI"
    | v -> Printf.sprintf "ACTIVITY(%Ld)" v
end
