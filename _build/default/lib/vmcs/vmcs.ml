(** VMCS store: a flat array of field values plus launch-state tracking.

    The store keeps every field truncated to its declared width, so
    bit-level serialisation and Hamming distances are well defined.  The
    [revision_id] and [launch_state] mirror the parts of the hardware
    structure that the VMX instruction emulation needs (vmclear /
    vmptrld / vmlaunch sequencing). *)

module Field = Field
module Controls = Controls

type launch_state = Clear | Launched

type t = {
  values : int64 array;
  mutable revision_id : int;
  mutable launch_state : launch_state;
}

let create () =
  { values = Array.make Field.count 0L; revision_id = 0; launch_state = Clear }

let copy t =
  {
    values = Array.copy t.values;
    revision_id = t.revision_id;
    launch_state = t.launch_state;
  }

let read t f = t.values.(f)

let write t f v =
  t.values.(f) <- Nf_stdext.Bits.truncate v (Field.bits f)

let read_bit t f n = Nf_stdext.Bits.is_set (read t f) n

let set_bit t f n b = write t f (Nf_stdext.Bits.assign (read t f) n b)

let flip_bit t f n = write t f (Nf_stdext.Bits.flip (read t f) n)

let clear_all t =
  Array.fill t.values 0 Field.count 0L;
  t.launch_state <- Clear

(** Bit-level serialisation: fields are packed consecutively, least
    significant bit first, in table order.  The blob is
    [Field.total_bits / 8] bytes (the "several KB" VM state of the paper:
    165 fields, ~8,000 bits). *)
let blob_bytes = (Field.total_bits + 7) / 8

(* Every field width is a byte multiple, so the packing is byte-aligned:
   (de)serialisation works in whole bytes. *)
let field_byte_offsets =
  let offs = Array.make Field.count 0 in
  let pos = ref 0 in
  List.iter
    (fun f ->
      offs.(f) <- !pos;
      assert (Field.bits f mod 8 = 0);
      pos := !pos + (Field.bits f / 8))
    Field.all;
  offs

let to_blob t =
  let b = Bytes.make blob_bytes '\000' in
  List.iter
    (fun f ->
      let off = field_byte_offsets.(f) in
      let v = t.values.(f) in
      for k = 0 to (Field.bits f / 8) - 1 do
        Bytes.set b (off + k)
          (Char.chr
             (Int64.to_int (Int64.shift_right_logical v (8 * k)) land 0xFF))
      done)
    Field.all;
  b

let of_blob b =
  let t = create () in
  let len = Bytes.length b in
  List.iter
    (fun f ->
      let off = field_byte_offsets.(f) in
      let v = ref 0L in
      for k = 0 to (Field.bits f / 8) - 1 do
        let byte = if off + k < len then Char.code (Bytes.get b (off + k)) else 0 in
        v := Int64.logor !v (Int64.shift_left (Int64.of_int byte) (8 * k))
      done;
      t.values.(f) <- !v)
    Field.all;
  t

(** Number of differing bits between two VM states, per-field widths
    respected — the metric of the paper's Fig. 5. *)
let hamming a b =
  List.fold_left
    (fun acc f ->
      acc + Nf_stdext.Bits.hamming ~width:(Field.bits f) a.values.(f) b.values.(f))
    0 Field.all

let equal a b = Array.for_all2 Int64.equal a.values b.values

(** Fields that differ between two states, for debugging/triage output. *)
let diff a b =
  List.filter (fun f -> a.values.(f) <> b.values.(f)) Field.all

let pp_diff ppf (a, b) =
  List.iter
    (fun f ->
      Format.fprintf ppf "%s: %Lx -> %Lx@." (Field.name f) a.values.(f)
        b.values.(f))
    (diff a b)
