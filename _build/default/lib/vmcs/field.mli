(** VMCS field layout: a fixed table of 165 fields totalling exactly
    8,000 bits — the VM-state figure of the paper's Fig. 5 experiment.
    Each field carries its Intel-style encoding, width class and area;
    field identity is a dense integer index, keeping the store a flat
    array and the bit-level serialisation deterministic. *)

type width = W16 | W32 | W64 | Natural

(** Natural-width fields are 64-bit on a 64-bit processor. *)
val bits_of_width : width -> int

type group =
  | Control (** VM-execution, entry and exit controls and addresses *)
  | Exit_info (** read-only exit information *)
  | Guest (** guest-state area *)
  | Host (** host-state area *)

val group_name : group -> string

type t = int (** dense index into the field table *)

type info = {
  index : int;
  name : string;
  encoding : int;
  width : width;
  group : group;
}

(** Number of fields (165). *)
val count : int

val info : t -> info
val name : t -> string
val width : t -> width
val group : t -> group
val encoding : t -> int
val bits : t -> int

(** Sum of all field widths (8,000). *)
val total_bits : int

(** Every field, in table (serialisation) order. *)
val all : t list

(** @raise Invalid_argument on an unknown field name. *)
val find_exn : string -> t

val of_encoding : int -> t option
val in_group : group -> t list

(* Named fields manipulated directly by the framework. *)

val vpid : t
val posted_intr_nv : t
val io_bitmap_a : t
val io_bitmap_b : t
val msr_bitmap : t
val exit_msr_store_addr : t
val exit_msr_load_addr : t
val entry_msr_load_addr : t
val virtual_apic_page_addr : t
val apic_access_addr : t
val posted_intr_desc_addr : t
val ept_pointer : t
val tsc_offset : t
val vmcs_link_pointer : t
val guest_ia32_debugctl : t
val guest_ia32_pat : t
val guest_ia32_efer : t
val guest_pdpte0 : t
val host_ia32_pat : t
val host_ia32_efer : t
val pin_based_ctls : t
val proc_based_ctls : t
val proc_based_ctls2 : t
val exception_bitmap : t
val cr3_target_count : t
val exit_ctls : t
val exit_msr_store_count : t
val exit_msr_load_count : t
val entry_ctls : t
val entry_msr_load_count : t
val entry_intr_info : t
val entry_exception_error_code : t
val entry_instruction_len : t
val tpr_threshold : t
val vm_instruction_error : t
val exit_reason : t
val exit_qualification : t
val exit_intr_info : t
val guest_interruptibility : t
val guest_activity_state : t
val guest_sysenter_cs : t
val guest_sysenter_esp : t
val guest_sysenter_eip : t
val preemption_timer_value : t
val cr0_guest_host_mask : t
val cr4_guest_host_mask : t
val cr0_read_shadow : t
val cr4_read_shadow : t
val guest_cr0 : t
val guest_cr3 : t
val guest_cr4 : t
val guest_dr7 : t
val guest_rsp : t
val guest_rip : t
val guest_rflags : t
val guest_pending_dbg : t
val guest_gdtr_base : t
val guest_idtr_base : t
val guest_gdtr_limit : t
val guest_idtr_limit : t
val host_cr0 : t
val host_cr3 : t
val host_cr4 : t
val host_rsp : t
val host_rip : t
val host_fs_base : t
val host_gs_base : t
val host_tr_base : t
val host_gdtr_base : t
val host_idtr_base : t
val host_sysenter_cs : t
val host_sysenter_esp : t
val host_sysenter_eip : t
val host_cs_selector : t
val host_tr_selector : t
val host_ss_selector : t

(** Per-segment field lookup. *)
val guest_selector : Nf_x86.Seg.register -> t

val guest_base : Nf_x86.Seg.register -> t
val guest_limit : Nf_x86.Seg.register -> t
val guest_ar : Nf_x86.Seg.register -> t

(** @raise Invalid_argument for LDTR (the host has no LDTR selector). *)
val host_selector : Nf_x86.Seg.register -> t

(** Guest activity states (SDM Vol. 3C §24.4.2). *)
module Activity : sig
  val active : int64
  val hlt : int64
  val shutdown : int64
  val wait_for_sipi : int64
  val name : int64 -> string
end
