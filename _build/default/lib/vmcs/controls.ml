(** Bit definitions for the VMX control fields (Intel SDM Vol. 3C §24.6–24.9).

    Each constant is a bit position within the corresponding 32-bit control
    field.  The capability MSRs in [Nf_cpu.Vmx_caps] decide, per CPU model
    and per vCPU configuration, which of these may be 0 and which may be 1. *)

module Pin = struct
  let external_interrupt_exiting = 0
  let nmi_exiting = 3
  let virtual_nmis = 5
  let preemption_timer = 6
  let process_posted_interrupts = 7

  let defined = [ 0; 3; 5; 6; 7 ]

  (* Bits 1, 2 and 4 are reserved and read as 1 (default1 class). *)
  let default1 = 0x16L
end

module Proc = struct
  let interrupt_window_exiting = 2
  let use_tsc_offsetting = 3
  let hlt_exiting = 7
  let invlpg_exiting = 9
  let mwait_exiting = 10
  let rdpmc_exiting = 11
  let rdtsc_exiting = 12
  let cr3_load_exiting = 15
  let cr3_store_exiting = 16
  let cr8_load_exiting = 19
  let cr8_store_exiting = 20
  let use_tpr_shadow = 21
  let nmi_window_exiting = 22
  let mov_dr_exiting = 23
  let unconditional_io_exiting = 24
  let use_io_bitmaps = 25
  let monitor_trap_flag = 27
  let use_msr_bitmaps = 28
  let monitor_exiting = 29
  let pause_exiting = 30
  let activate_secondary_controls = 31

  let defined =
    [ 2; 3; 7; 9; 10; 11; 12; 15; 16; 19; 20; 21; 22; 23; 24; 25; 27; 28;
      29; 30; 31 ]

  (* Reserved-1 bits 1, 4..6, 8, 13, 14, 17, 18, 26. *)
  let default1 = 0x0401_E172L
end

module Proc2 = struct
  let virtualize_apic_accesses = 0
  let enable_ept = 1
  let descriptor_table_exiting = 2
  let enable_rdtscp = 3
  let virtualize_x2apic = 4
  let enable_vpid = 5
  let wbinvd_exiting = 6
  let unrestricted_guest = 7
  let apic_register_virtualization = 8
  let virtual_interrupt_delivery = 9
  let pause_loop_exiting = 10
  let rdrand_exiting = 11
  let enable_invpcid = 12
  let enable_vmfunc = 13
  let vmcs_shadowing = 14
  let enable_encls_exiting = 15
  let rdseed_exiting = 16
  let enable_pml = 17
  let ept_violation_ve = 18
  let conceal_vmx_from_pt = 19
  let enable_xsaves = 20
  let mode_based_ept_exec = 22
  let sub_page_write_permission = 23
  let pt_uses_guest_pa = 24
  let use_tsc_scaling = 25
  let enable_user_wait_pause = 26
  let enable_enclv_exiting = 28

  let defined =
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15; 16; 17; 18; 19;
      20; 22; 23; 24; 25; 26; 28 ]

  let default1 = 0L
end

module Entry = struct
  let load_debug_controls = 2
  let ia32e_mode_guest = 9
  let entry_to_smm = 10
  let deactivate_dual_monitor = 11
  let load_perf_global_ctrl = 13
  let load_ia32_pat = 14
  let load_ia32_efer = 15
  let load_bndcfgs = 16
  let conceal_vmx_from_pt = 17
  let load_rtit_ctl = 18
  let load_cet_state = 20
  let load_pkrs = 22

  let defined = [ 2; 9; 10; 11; 13; 14; 15; 16; 17; 18; 20; 22 ]

  (* Reserved-1 bits 0, 1, 3..8, 12. *)
  let default1 = 0x11FBL
end

module Exit = struct
  let save_debug_controls = 2
  let host_address_space_size = 9
  let load_perf_global_ctrl = 12
  let acknowledge_interrupt = 15
  let save_ia32_pat = 18
  let load_ia32_pat = 19
  let save_ia32_efer = 20
  let load_ia32_efer = 21
  let save_preemption_timer = 22
  let clear_bndcfgs = 23
  let conceal_vmx_from_pt = 24
  let clear_rtit_ctl = 25
  let load_cet_state = 28
  let load_pkrs = 29

  let defined = [ 2; 9; 12; 15; 18; 19; 20; 21; 22; 23; 24; 25; 28; 29 ]

  (* Reserved-1 bits 0, 1, 3..8, 10, 11, 13, 14, 16, 17. *)
  let default1 = 0x36DFBL
end

(* EPT pointer field layout (SDM Vol. 3C §24.6.11). *)
module Eptp = struct
  let memtype v = Int64.to_int (Nf_stdext.Bits.extract v ~lo:0 ~width:3)
  let walk_length v = Int64.to_int (Nf_stdext.Bits.extract v ~lo:3 ~width:3)
  let access_dirty v = Nf_stdext.Bits.is_set v 6
  let pml4_addr v = Int64.logand v 0xFFFF_FFFF_F000L

  let make ?(memtype = 6) ?(walk_length = 3) ?(ad = true) ~pml4 () =
    let open Nf_stdext.Bits in
    let v = Int64.logand pml4 0xFFFF_FFFF_F000L in
    let v = insert v ~lo:0 ~width:3 (Int64.of_int memtype) in
    let v = insert v ~lo:3 ~width:3 (Int64.of_int walk_length) in
    assign v 6 ad

  (* Valid memory types for an EPTP: 0 (UC) and 6 (WB). *)
  let memtype_valid v = memtype v = 0 || memtype v = 6
end
