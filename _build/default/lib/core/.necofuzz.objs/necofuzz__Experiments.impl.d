lib/core/experiments.ml: Array Float Format List Nf_agent Nf_baselines Nf_coverage Nf_cpu Nf_fuzzer Nf_harness Nf_stdext Nf_validator Nf_vmcs Printf String
