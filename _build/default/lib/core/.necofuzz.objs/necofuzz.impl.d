lib/core/necofuzz.ml: Experiments Nf_agent Nf_config Nf_coverage Nf_cpu Nf_fuzzer Nf_harness Nf_sanitizer Nf_validator
