(** Non-root execution model for Intel VT-x.

    Given the controls of the VMCS a guest is running under and an
    instruction the guest executes, decide whether the instruction causes
    a VM exit and with what basic reason/qualification (SDM Vol. 3C §25.1).

    Guest memory is not modelled; I/O- and MSR-bitmap lookups are replaced
    by a deterministic hash of (bitmap address, index).  This preserves
    what matters for fuzzing — whether intercept decisions *vary* with the
    bitmap configuration — without a physical-memory substrate (see
    DESIGN.md §1). *)

open Nf_vmcs

type exit = { reason : int; qualification : int64; intr_info : int64 }

type verdict = No_exit | Exit of exit

let exit ?(qualification = 0L) ?(intr_info = 0L) reason =
  Exit { reason; qualification; intr_info }

let bit vmcs f n = Nf_stdext.Bits.is_set (Vmcs.read vmcs f) n
let proc vmcs n = bit vmcs Field.proc_based_ctls n

let proc2 vmcs n =
  proc vmcs Controls.Proc.activate_secondary_controls
  && bit vmcs Field.proc_based_ctls2 n

(* Deterministic surrogate for a bit lookup in a guest-memory bitmap. *)
let bitmap_bit addr index =
  let r = Nf_stdext.Rng.of_int64 (Int64.add addr (Int64.of_int (index * 2654435761))) in
  Nf_stdext.Rng.bool r

let io_intercepted vmcs port =
  if proc vmcs Controls.Proc.unconditional_io_exiting then true
  else if proc vmcs Controls.Proc.use_io_bitmaps then begin
    let bitmap =
      if port < 0x8000 then Vmcs.read vmcs Field.io_bitmap_a
      else Vmcs.read vmcs Field.io_bitmap_b
    in
    bitmap_bit bitmap port
  end
  else false

(* MSRs in the low (0..0x1FFF) and high (0xC0000000..0xC0001FFF) ranges
   are covered by the MSR bitmaps; everything else always exits. *)
let msr_intercepted vmcs ~write msr =
  if not (proc vmcs Controls.Proc.use_msr_bitmaps) then true
  else begin
    let in_range =
      (msr >= 0 && msr < 0x2000)
      || (msr >= 0xC0000000 && msr < 0xC0002000)
    in
    if not in_range then true
    else bitmap_bit (Vmcs.read vmcs Field.msr_bitmap) ((msr * 2) + if write then 1 else 0)
  end

let exception_intercepted vmcs vector =
  Nf_stdext.Bits.is_set (Vmcs.read vmcs Field.exception_bitmap) vector

let exception_exit vmcs vector =
  if exception_intercepted vmcs vector then
    exit
      ~intr_info:
        (Nf_x86.Exn.Intr_info.make ~typ:Nf_x86.Exn.Intr_info.type_hw_exception
           ~vector ())
      Exit_reason.exception_nmi
  else No_exit

(* CR0/CR4 writes exit when a bit owned by the hypervisor (guest/host
   mask) would change relative to the read shadow. *)
let cr_masked_write_exits vmcs ~mask_f ~shadow_f value =
  let mask = Vmcs.read vmcs mask_f in
  let shadow = Vmcs.read vmcs shadow_f in
  Int64.logand mask (Int64.logxor value shadow) <> 0L

let cr_access_qual ~cr ~write =
  (* Exit qualification for CR accesses: bits 3:0 = CR number, bits 5:4 =
     access type (0 = mov-to, 1 = mov-from). *)
  Int64.of_int (cr lor (if write then 0 else 0x10))

let cr3_in_target_list vmcs value =
  let count = Int64.to_int (Vmcs.read vmcs Field.cr3_target_count) in
  let rec go i =
    if i >= count || i >= 4 then false
    else if
      Vmcs.read vmcs (Field.find_exn (Printf.sprintf "CR3_TARGET_VALUE%d" i))
      = value
    then true
    else go (i + 1)
  in
  go 0

let decide (vmcs : Vmcs.t) (insn : Insn.t) : verdict =
  let open Controls in
  match insn with
  | Insn.Nop -> No_exit
  | Cpuid leaf -> exit ~qualification:(Int64.of_int leaf) Exit_reason.cpuid
  | Hlt -> if proc vmcs Proc.hlt_exiting then exit Exit_reason.hlt else No_exit
  | Pause ->
      if proc vmcs Proc.pause_exiting then exit Exit_reason.pause
      else if proc2 vmcs Proc2.pause_loop_exiting then exit Exit_reason.pause
      else No_exit
  | Mwait -> if proc vmcs Proc.mwait_exiting then exit Exit_reason.mwait else No_exit
  | Monitor ->
      if proc vmcs Proc.monitor_exiting then exit Exit_reason.monitor else No_exit
  | Invd -> exit Exit_reason.invd
  | Wbinvd ->
      if proc2 vmcs Proc2.wbinvd_exiting then exit Exit_reason.wbinvd else No_exit
  | Invlpg addr ->
      if proc vmcs Proc.invlpg_exiting then
        exit ~qualification:addr Exit_reason.invlpg
      else No_exit
  | Rdtsc -> if proc vmcs Proc.rdtsc_exiting then exit Exit_reason.rdtsc else No_exit
  | Rdtscp ->
      if not (proc2 vmcs Proc2.enable_rdtscp) then exception_exit vmcs Nf_x86.Exn.ud
      else if proc vmcs Proc.rdtsc_exiting then exit Exit_reason.rdtscp
      else No_exit
  | Rdpmc -> if proc vmcs Proc.rdpmc_exiting then exit Exit_reason.rdpmc else No_exit
  | Rdrand ->
      if proc2 vmcs Proc2.rdrand_exiting then exit Exit_reason.rdrand else No_exit
  | Rdseed ->
      if proc2 vmcs Proc2.rdseed_exiting then exit Exit_reason.rdseed else No_exit
  | Xsetbv _ -> exit Exit_reason.xsetbv
  | Vmcall -> exit Exit_reason.vmcall
  | Mov_to_cr (0, v) ->
      if
        cr_masked_write_exits vmcs ~mask_f:Field.cr0_guest_host_mask
          ~shadow_f:Field.cr0_read_shadow v
      then exit ~qualification:(cr_access_qual ~cr:0 ~write:true) Exit_reason.cr_access
      else No_exit
  | Mov_to_cr (3, v) ->
      if proc vmcs Proc.cr3_load_exiting && not (cr3_in_target_list vmcs v) then
        exit ~qualification:(cr_access_qual ~cr:3 ~write:true) Exit_reason.cr_access
      else No_exit
  | Mov_to_cr (4, v) ->
      if
        cr_masked_write_exits vmcs ~mask_f:Field.cr4_guest_host_mask
          ~shadow_f:Field.cr4_read_shadow v
      then exit ~qualification:(cr_access_qual ~cr:4 ~write:true) Exit_reason.cr_access
      else No_exit
  | Mov_to_cr (8, _) ->
      if proc vmcs Proc.cr8_load_exiting then
        exit ~qualification:(cr_access_qual ~cr:8 ~write:true) Exit_reason.cr_access
      else No_exit
  | Mov_to_cr (_, _) -> exception_exit vmcs Nf_x86.Exn.ud
  | Mov_from_cr 3 ->
      if proc vmcs Proc.cr3_store_exiting then
        exit ~qualification:(cr_access_qual ~cr:3 ~write:false) Exit_reason.cr_access
      else No_exit
  | Mov_from_cr 8 ->
      if proc vmcs Proc.cr8_store_exiting then
        exit ~qualification:(cr_access_qual ~cr:8 ~write:false) Exit_reason.cr_access
      else No_exit
  | Mov_from_cr _ -> No_exit
  | Mov_dr _ ->
      if proc vmcs Proc.mov_dr_exiting then exit Exit_reason.dr_access else No_exit
  | Io_in port ->
      if io_intercepted vmcs port then
        exit
          ~qualification:(Int64.of_int ((port lsl 16) lor 0x8))
          Exit_reason.io_instruction
      else No_exit
  | Io_out (port, _) ->
      if io_intercepted vmcs port then
        exit ~qualification:(Int64.of_int (port lsl 16)) Exit_reason.io_instruction
      else No_exit
  | Rdmsr msr ->
      if msr_intercepted vmcs ~write:false msr then
        exit ~qualification:(Int64.of_int msr) Exit_reason.msr_read
      else No_exit
  | Wrmsr (msr, _) ->
      if msr_intercepted vmcs ~write:true msr then
        exit ~qualification:(Int64.of_int msr) Exit_reason.msr_write
      else No_exit
  | Vmx_in_guest kind ->
      (* All VMX instructions executed in non-root mode exit
         unconditionally. *)
      let reason =
        match kind with
        | "vmclear" -> Exit_reason.vmclear
        | "vmlaunch" -> Exit_reason.vmlaunch
        | "vmptrld" -> Exit_reason.vmptrld
        | "vmptrst" -> Exit_reason.vmptrst
        | "vmread" -> Exit_reason.vmread
        | "vmresume" -> Exit_reason.vmresume
        | "vmwrite" -> Exit_reason.vmwrite
        | "vmxoff" -> Exit_reason.vmxoff
        | "vmxon" -> Exit_reason.vmxon
        | "invept" -> Exit_reason.invept
        | "invvpid" -> Exit_reason.invvpid
        | "invpcid" -> Exit_reason.invpcid
        | "vmfunc" -> Exit_reason.vmfunc
        | _ -> -1 (* an SVM instruction on Intel: #UD *)
      in
      if reason = -1 then exception_exit vmcs Nf_x86.Exn.ud else exit reason
  | Soft_int vector ->
      if exception_intercepted vmcs vector then
        exit
          ~intr_info:
            (Nf_x86.Exn.Intr_info.make
               ~typ:Nf_x86.Exn.Intr_info.type_sw_interrupt ~vector ())
          Exit_reason.exception_nmi
      else No_exit
  | Ud2 -> exception_exit vmcs Nf_x86.Exn.ud
  | Ext_interrupt vector ->
      (* An external interrupt arriving in non-root mode exits when
         external-interrupt exiting is set; otherwise it is delivered
         through the guest IDT. *)
      if bit vmcs Field.pin_based_ctls Pin.external_interrupt_exiting then
        exit
          ~intr_info:
            (Nf_x86.Exn.Intr_info.make ~typ:Nf_x86.Exn.Intr_info.type_external
               ~vector ())
          Exit_reason.external_interrupt
      else No_exit
  | Nmi_event ->
      if bit vmcs Field.pin_based_ctls Pin.nmi_exiting then
        exit
          ~intr_info:
            (Nf_x86.Exn.Intr_info.make ~typ:Nf_x86.Exn.Intr_info.type_nmi
               ~vector:2 ())
          Exit_reason.exception_nmi
      else No_exit
