(** vCPU feature configuration.

    This is the bit array the vCPU configurator mutates (§3.5/§4.4): each
    flag enables or disables one hardware-assisted-virtualization feature
    of the virtual CPU presented to the L1 hypervisor.  The Intel flags map
    to kvm-intel.ko module parameters / QEMU cpu flags, the AMD ones to
    kvm-amd.ko parameters. *)

type t = {
  (* Common *)
  nested : bool; (* expose VMX/SVM to the guest at all *)
  (* Intel VT-x *)
  ept : bool;
  unrestricted_guest : bool; (* requires ept *)
  vpid : bool;
  vmcs_shadowing : bool;
  apicv : bool; (* APIC-register virtualization + virtual-interrupt delivery *)
  posted_interrupts : bool; (* requires apicv *)
  preemption_timer : bool;
  pml : bool; (* requires ept *)
  vmfunc : bool; (* requires ept *)
  ept_ad : bool; (* EPT accessed/dirty flags; requires ept *)
  tsc_scaling : bool;
  xsaves : bool;
  (* AMD-V *)
  npt : bool;
  nrips : bool;
  vgif : bool;
  avic : bool;
  vls : bool; (* virtual VMLOAD/VMSAVE *)
  pause_filter : bool;
}

let default =
  {
    nested = true;
    ept = true;
    unrestricted_guest = true;
    vpid = true;
    vmcs_shadowing = true;
    apicv = true;
    posted_interrupts = true;
    preemption_timer = true;
    pml = true;
    vmfunc = true;
    ept_ad = true;
    tsc_scaling = true;
    xsaves = true;
    npt = true;
    nrips = true;
    vgif = true;
    avic = false; (* matches KVM's default: AVIC off *)
    vls = true;
    pause_filter = true;
  }

(** Resolve dependencies the way KVM's module-parameter handling does:
    disabling a prerequisite silently disables its dependents. *)
let normalize f =
  let f = if f.ept then f else { f with unrestricted_guest = false; pml = false; vmfunc = false; ept_ad = false } in
  let f = if f.apicv then f else { f with posted_interrupts = false } in
  f

(** The fixed order in which the configurator's fuzzing-input bit array is
    applied (§4.4: "configuration is generally represented as a bit
    array"). *)
let nth_flag f i =
  match i with
  | 0 -> f.ept
  | 1 -> f.unrestricted_guest
  | 2 -> f.vpid
  | 3 -> f.vmcs_shadowing
  | 4 -> f.apicv
  | 5 -> f.posted_interrupts
  | 6 -> f.preemption_timer
  | 7 -> f.pml
  | 8 -> f.vmfunc
  | 9 -> f.ept_ad
  | 10 -> f.tsc_scaling
  | 11 -> f.xsaves
  | 12 -> f.npt
  | 13 -> f.nrips
  | 14 -> f.vgif
  | 15 -> f.avic
  | 16 -> f.vls
  | 17 -> f.pause_filter
  | _ -> invalid_arg "Features.nth_flag"

let flag_count = 18

let with_nth_flag f i b =
  match i with
  | 0 -> { f with ept = b }
  | 1 -> { f with unrestricted_guest = b }
  | 2 -> { f with vpid = b }
  | 3 -> { f with vmcs_shadowing = b }
  | 4 -> { f with apicv = b }
  | 5 -> { f with posted_interrupts = b }
  | 6 -> { f with preemption_timer = b }
  | 7 -> { f with pml = b }
  | 8 -> { f with vmfunc = b }
  | 9 -> { f with ept_ad = b }
  | 10 -> { f with tsc_scaling = b }
  | 11 -> { f with xsaves = b }
  | 12 -> { f with npt = b }
  | 13 -> { f with nrips = b }
  | 14 -> { f with vgif = b }
  | 15 -> { f with avic = b }
  | 16 -> { f with vls = b }
  | 17 -> { f with pause_filter = b }
  | _ -> invalid_arg "Features.with_nth_flag"

let flag_name = function
  | 0 -> "ept" | 1 -> "unrestricted_guest" | 2 -> "vpid"
  | 3 -> "vmcs_shadowing" | 4 -> "apicv" | 5 -> "posted_interrupts"
  | 6 -> "preemption_timer" | 7 -> "pml" | 8 -> "vmfunc" | 9 -> "ept_ad"
  | 10 -> "tsc_scaling" | 11 -> "xsaves" | 12 -> "npt" | 13 -> "nrips"
  | 14 -> "vgif" | 15 -> "avic" | 16 -> "vls" | 17 -> "pause_filter"
  | _ -> invalid_arg "Features.flag_name"

let pp ppf f =
  let flags =
    List.filter_map
      (fun i -> if nth_flag f i then Some (flag_name i) else None)
      (List.init flag_count Fun.id)
  in
  Format.fprintf ppf "{%s}" (String.concat "," flags)
