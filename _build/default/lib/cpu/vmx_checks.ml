(** VM-entry consistency checks (Intel SDM Vol. 3C §26.2–26.3).

    Each check has a stable identifier.  Three consumers share this table:

    - the physical-CPU oracle ([Vmx_cpu]), which runs all checks except the
      hardware quirks it is documented/observed to skip;
    - the Bochs-derived VM state validator, which uses the checks for
      rounding raw states toward validity;
    - the simulated hypervisors, which replicate a *subset* — the missing
      identifiers are exactly the planted vulnerabilities.

    The checks read like the SDM: one rule, one failure message. *)

open Nf_vmcs

type group = Ctl | Host | Guest

let group_name = function Ctl -> "controls" | Host -> "host-state" | Guest -> "guest-state"

type ctx = {
  caps : Vmx_caps.t;
  vmcs : Vmcs.t;
  entry_msr_load : (int * int64) array;
      (* parsed VM-entry MSR-load area; its *address/count* fields are
         checked here, its *contents* are processed during entry *)
}

type check = {
  id : string;
  group : group;
  doc : string;
  run : ctx -> (unit, string) result;
}

let ok = Ok ()
let fail fmt = Format.kasprintf (fun s -> Error s) fmt

let require b fmt =
  if b then Format.ikfprintf (fun _ -> Ok ()) Format.str_formatter fmt
  else Format.kasprintf (fun s -> Error s) fmt

(* Shorthands. *)
let rd ctx f = Vmcs.read ctx.vmcs f
let bit ctx f n = Nf_stdext.Bits.is_set (Vmcs.read ctx.vmcs f) n

let pin ctx n = bit ctx Field.pin_based_ctls n
let proc ctx n = bit ctx Field.proc_based_ctls n

let proc2_active ctx = proc ctx Controls.Proc.activate_secondary_controls

let proc2 ctx n = proc2_active ctx && bit ctx Field.proc_based_ctls2 n
let entryc ctx n = bit ctx Field.entry_ctls n
let exitc ctx n = bit ctx Field.exit_ctls n

let ia32e_guest ctx = entryc ctx Controls.Entry.ia32e_mode_guest
let unrestricted ctx = proc2 ctx Controls.Proc2.unrestricted_guest

let page_aligned v = Nf_stdext.Bits.is_aligned v 12

let in_phys ctx v = Vmx_caps.addr_in_physaddr ctx.caps v

let valid_pat v =
  let rec go i =
    if i = 8 then true
    else begin
      let b = Int64.to_int (Nf_stdext.Bits.extract v ~lo:(i * 8) ~width:8) in
      (match b with 0 | 1 | 4 | 5 | 6 | 7 -> true | _ -> false) && go (i + 1)
    end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Control-field checks (§26.2.1)                                      *)
(* ------------------------------------------------------------------ *)

let ctl_checks =
  [
    {
      id = "ctl.pin_reserved";
      group = Ctl;
      doc = "Pin-based controls must honour IA32_VMX_PINBASED_CTLS";
      run =
        (fun ctx ->
          require
            (Vmx_caps.ctl_valid ctx.caps.pin (rd ctx Field.pin_based_ctls))
            "pin-based controls violate capability MSR");
    };
    {
      id = "ctl.proc_reserved";
      group = Ctl;
      doc = "Primary processor-based controls must honour capabilities";
      run =
        (fun ctx ->
          require
            (Vmx_caps.ctl_valid ctx.caps.proc (rd ctx Field.proc_based_ctls))
            "primary processor-based controls violate capability MSR");
    };
    {
      id = "ctl.proc2_reserved";
      group = Ctl;
      doc = "Secondary controls must honour capabilities when activated";
      run =
        (fun ctx ->
          if not (proc2_active ctx) then ok
          else
            require
              (Vmx_caps.ctl_valid ctx.caps.proc2 (rd ctx Field.proc_based_ctls2))
              "secondary processor-based controls violate capability MSR");
    };
    {
      id = "ctl.exit_reserved";
      group = Ctl;
      doc = "VM-exit controls must honour capabilities";
      run =
        (fun ctx ->
          require
            (Vmx_caps.ctl_valid ctx.caps.exit (rd ctx Field.exit_ctls))
            "VM-exit controls violate capability MSR");
    };
    {
      id = "ctl.entry_reserved";
      group = Ctl;
      doc = "VM-entry controls must honour capabilities";
      run =
        (fun ctx ->
          require
            (Vmx_caps.ctl_valid ctx.caps.entry (rd ctx Field.entry_ctls))
            "VM-entry controls violate capability MSR");
    };
    {
      id = "ctl.cr3_target_count";
      group = Ctl;
      doc = "CR3-target count must not exceed 4";
      run =
        (fun ctx ->
          require
            (rd ctx Field.cr3_target_count <= 4L)
            "CR3-target count %Ld > 4" (rd ctx Field.cr3_target_count));
    };
    {
      id = "ctl.io_bitmaps";
      group = Ctl;
      doc = "I/O bitmap addresses must be 4K-aligned physical addresses";
      run =
        (fun ctx ->
          if not (proc ctx Controls.Proc.use_io_bitmaps) then ok
          else begin
            let a = rd ctx Field.io_bitmap_a and b = rd ctx Field.io_bitmap_b in
            require
              (page_aligned a && in_phys ctx a && page_aligned b && in_phys ctx b)
              "I/O bitmap address invalid (A=%Lx B=%Lx)" a b
          end);
    };
    {
      id = "ctl.msr_bitmap";
      group = Ctl;
      doc = "MSR bitmap address must be 4K-aligned physical address";
      run =
        (fun ctx ->
          if not (proc ctx Controls.Proc.use_msr_bitmaps) then ok
          else begin
            let a = rd ctx Field.msr_bitmap in
            require
              (page_aligned a && in_phys ctx a)
              "MSR bitmap address invalid (%Lx)" a
          end);
    };
    {
      id = "ctl.tpr_shadow";
      group = Ctl;
      doc = "TPR shadow requires a valid virtual-APIC page and threshold";
      run =
        (fun ctx ->
          if proc ctx Controls.Proc.use_tpr_shadow then begin
            let a = rd ctx Field.virtual_apic_page_addr in
            if not (page_aligned a && in_phys ctx a) then
              fail "virtual-APIC page address invalid (%Lx)" a
            else begin
              let thr = rd ctx Field.tpr_threshold in
              if Int64.logand thr (Int64.lognot 0xFL) <> 0L then
                fail "TPR threshold reserved bits set (%Lx)" thr
              else ok
            end
          end
          else if
            proc2 ctx Controls.Proc2.virtualize_x2apic
            || proc2 ctx Controls.Proc2.apic_register_virtualization
            || proc2 ctx Controls.Proc2.virtual_interrupt_delivery
          then
            fail "APIC virtualization controls require use-TPR-shadow"
          else ok);
    };
    {
      id = "ctl.x2apic_conflict";
      group = Ctl;
      doc = "x2APIC mode and APIC-access virtualization are mutually exclusive";
      run =
        (fun ctx ->
          require
            (not
               (proc2 ctx Controls.Proc2.virtualize_x2apic
               && proc2 ctx Controls.Proc2.virtualize_apic_accesses))
            "virtualize-x2APIC and virtualize-APIC-accesses both set");
    };
    {
      id = "ctl.nmi";
      group = Ctl;
      doc = "Virtual NMIs require NMI exiting";
      run =
        (fun ctx ->
          require
            (not (pin ctx Controls.Pin.virtual_nmis)
            || pin ctx Controls.Pin.nmi_exiting)
            "virtual NMIs set without NMI exiting");
    };
    {
      id = "ctl.nmi_window";
      group = Ctl;
      doc = "NMI-window exiting requires virtual NMIs";
      run =
        (fun ctx ->
          require
            (not (proc ctx Controls.Proc.nmi_window_exiting)
            || pin ctx Controls.Pin.virtual_nmis)
            "NMI-window exiting set without virtual NMIs");
    };
    {
      id = "ctl.posted_intr";
      group = Ctl;
      doc = "Posted interrupts require VID, ack-on-exit, a valid vector and descriptor";
      run =
        (fun ctx ->
          if not (pin ctx Controls.Pin.process_posted_interrupts) then ok
          else if not (proc2 ctx Controls.Proc2.virtual_interrupt_delivery) then
            fail "posted interrupts without virtual-interrupt delivery"
          else if not (exitc ctx Controls.Exit.acknowledge_interrupt) then
            fail "posted interrupts without acknowledge-interrupt-on-exit"
          else begin
            let nv = rd ctx Field.posted_intr_nv in
            if Int64.logand nv (Int64.lognot 0xFFL) <> 0L then
              fail "posted-interrupt notification vector reserved bits (%Lx)" nv
            else begin
              let d = rd ctx Field.posted_intr_desc_addr in
              require
                (Nf_stdext.Bits.is_aligned d 6 && in_phys ctx d)
                "posted-interrupt descriptor misaligned (%Lx)" d
            end
          end);
    };
    {
      id = "ctl.vid_requires_ext_intr";
      group = Ctl;
      doc = "Virtual-interrupt delivery requires external-interrupt exiting";
      run =
        (fun ctx ->
          require
            (not (proc2 ctx Controls.Proc2.virtual_interrupt_delivery)
            || pin ctx Controls.Pin.external_interrupt_exiting)
            "virtual-interrupt delivery without external-interrupt exiting");
    };
    {
      id = "ctl.vpid_nonzero";
      group = Ctl;
      doc = "Enable-VPID requires VPID != 0";
      run =
        (fun ctx ->
          require
            (not (proc2 ctx Controls.Proc2.enable_vpid) || rd ctx Field.vpid <> 0L)
            "enable VPID with VPID 0");
    };
    {
      id = "ctl.eptp_valid";
      group = Ctl;
      doc = "EPT pointer memory type, walk length and reserved bits";
      run =
        (fun ctx ->
          if not (proc2 ctx Controls.Proc2.enable_ept) then ok
          else begin
            let e = rd ctx Field.ept_pointer in
            let mt = Controls.Eptp.memtype e in
            let mt_ok =
              (mt = 6 && ctx.caps.has_ept_wb) || (mt = 0 && ctx.caps.has_ept_uc)
            in
            if not mt_ok then fail "EPTP memory type %d unsupported" mt
            else if
              Controls.Eptp.walk_length e <> 3
              && not (Controls.Eptp.walk_length e = 4 && ctx.caps.has_ept_5level)
            then fail "EPTP walk length %d unsupported" (Controls.Eptp.walk_length e)
            else if Controls.Eptp.access_dirty e && not ctx.caps.has_ept_ad then
              fail "EPTP accessed/dirty flag unsupported"
            else if Int64.logand e 0xF80L <> 0L then
              fail "EPTP reserved bits 11:7 set (%Lx)" e
            else
              require (in_phys ctx e) "EPTP beyond physical-address width (%Lx)" e
          end);
    };
    {
      id = "ctl.unrestricted_requires_ept";
      group = Ctl;
      doc = "Unrestricted guest requires EPT";
      run =
        (fun ctx ->
          require
            (not (proc2 ctx Controls.Proc2.unrestricted_guest)
            || proc2 ctx Controls.Proc2.enable_ept)
            "unrestricted guest without EPT");
    };
    {
      id = "ctl.pml";
      group = Ctl;
      doc = "PML requires EPT and a 4K-aligned PML address";
      run =
        (fun ctx ->
          if not (proc2 ctx Controls.Proc2.enable_pml) then ok
          else if not (proc2 ctx Controls.Proc2.enable_ept) then
            fail "PML without EPT"
          else begin
            let a = rd ctx (Field.find_exn "PML_ADDRESS") in
            require (page_aligned a && in_phys ctx a) "PML address invalid (%Lx)" a
          end);
    };
    {
      id = "ctl.vmfunc_requires_ept";
      group = Ctl;
      doc = "VM functions require EPT";
      run =
        (fun ctx ->
          require
            (not (proc2 ctx Controls.Proc2.enable_vmfunc)
            || proc2 ctx Controls.Proc2.enable_ept)
            "enable VM functions without EPT");
    };
    {
      id = "ctl.apic_access_align";
      group = Ctl;
      doc = "APIC-access address must be 4K-aligned physical address";
      run =
        (fun ctx ->
          if not (proc2 ctx Controls.Proc2.virtualize_apic_accesses) then ok
          else begin
            let a = rd ctx Field.apic_access_addr in
            require
              (page_aligned a && in_phys ctx a)
              "APIC-access address invalid (%Lx)" a
          end);
    };
    {
      id = "ctl.exit_msr_areas";
      group = Ctl;
      doc = "VM-exit MSR store/load areas: count bound, 16-byte alignment";
      run =
        (fun ctx ->
          let area count_f addr_f what =
            let count = Int64.to_int (rd ctx count_f) in
            if count = 0 then ok
            else if count > ctx.caps.max_msr_list then
              fail "%s count %d exceeds capability" what count
            else begin
              let a = rd ctx addr_f in
              require
                (Nf_stdext.Bits.is_aligned a 4 && in_phys ctx a)
                "%s address invalid (%Lx)" what a
            end
          in
          match area Field.exit_msr_store_count Field.exit_msr_store_addr "exit MSR-store" with
          | Error _ as e -> e
          | Ok () ->
              area Field.exit_msr_load_count Field.exit_msr_load_addr "exit MSR-load");
    };
    {
      id = "ctl.entry_msr_area";
      group = Ctl;
      doc = "VM-entry MSR-load area: count bound, 16-byte alignment";
      run =
        (fun ctx ->
          let count = Int64.to_int (rd ctx Field.entry_msr_load_count) in
          if count = 0 then ok
          else if count > ctx.caps.max_msr_list then
            fail "entry MSR-load count %d exceeds capability" count
          else begin
            let a = rd ctx Field.entry_msr_load_addr in
            require
              (Nf_stdext.Bits.is_aligned a 4 && in_phys ctx a)
              "entry MSR-load address invalid (%Lx)" a
          end);
    };
    {
      id = "ctl.entry_intr_info";
      group = Ctl;
      doc = "VM-entry interruption information must be well-formed";
      run =
        (fun ctx ->
          let open Nf_x86.Exn.Intr_info in
          let ii = rd ctx Field.entry_intr_info in
          if not (valid ii) then ok
          else begin
            let t = typ ii and v = vector ii in
            if Int64.logand ii reserved_mask <> 0L then
              fail "entry interruption-info reserved bits set (%Lx)" ii
            else if t = 1 then fail "entry interruption type 1 is reserved"
            else if t = type_nmi && v <> 2 then
              fail "NMI injection with vector %d" v
            else if t = type_hw_exception && v > 31 then
              fail "hardware-exception injection with vector %d > 31" v
            else if
              deliver_error_code ii
              && not (t = type_hw_exception && Nf_x86.Exn.has_error_code v)
            then fail "deliver-error-code set for vector %d/type %d" v t
            else if
              deliver_error_code ii
              && Int64.logand (rd ctx Field.entry_exception_error_code)
                   (Int64.lognot 0x7FFFL)
                 <> 0L
            then fail "entry exception error code reserved bits set"
            else if
              (t = type_sw_interrupt || t = type_sw_exception
             || t = type_priv_sw_exception)
              &&
              let len = rd ctx Field.entry_instruction_len in
              len < 1L || len > 15L
            then fail "software injection with instruction length out of range"
            else ok
          end);
    };
    {
      id = "ctl.smm";
      group = Ctl;
      doc = "Entry-to-SMM / deactivate-dual-monitor must be 0 outside SMM";
      run =
        (fun ctx ->
          if entryc ctx Controls.Entry.entry_to_smm then
            fail "entry to SMM outside system-management mode"
          else if entryc ctx Controls.Entry.deactivate_dual_monitor then
            fail "deactivate dual-monitor treatment outside SMM"
          else ok);
    };
    {
      id = "ctl.preemption_timer_save";
      group = Ctl;
      doc = "Save-preemption-timer requires activate-preemption-timer";
      run =
        (fun ctx ->
          require
            (not (exitc ctx Controls.Exit.save_preemption_timer)
            || pin ctx Controls.Pin.preemption_timer)
            "save VMX-preemption timer without activating it");
    };
  ]

(* ------------------------------------------------------------------ *)
(* Host-state checks (§26.2.2–26.2.4)                                  *)
(* ------------------------------------------------------------------ *)

let host_addr_space ctx = exitc ctx Controls.Exit.host_address_space_size

let host_checks =
  [
    {
      id = "host.cr0_fixed";
      group = Host;
      doc = "Host CR0 must honour the CR0 fixed bits";
      run =
        (fun ctx ->
          require
            (Vmx_caps.cr0_valid ctx.caps (rd ctx Field.host_cr0))
            "host CR0 violates fixed bits (%Lx)" (rd ctx Field.host_cr0));
    };
    {
      id = "host.cr4_fixed";
      group = Host;
      doc = "Host CR4 must honour the CR4 fixed bits";
      run =
        (fun ctx ->
          require
            (Vmx_caps.cr4_valid ctx.caps (rd ctx Field.host_cr4))
            "host CR4 violates fixed bits (%Lx)" (rd ctx Field.host_cr4));
    };
    {
      id = "host.cr3_width";
      group = Host;
      doc = "Host CR3 must not exceed the physical-address width";
      run =
        (fun ctx ->
          require
            (in_phys ctx (rd ctx Field.host_cr3))
            "host CR3 beyond physical-address width (%Lx)" (rd ctx Field.host_cr3));
    };
    {
      id = "host.addr_space";
      group = Host;
      doc = "64-bit host: host-address-space-size consistency with CR4/RIP";
      run =
        (fun ctx ->
          if host_addr_space ctx then begin
            if not (bit ctx Field.host_cr4 Nf_x86.Cr4.pae) then
              fail "64-bit host without host CR4.PAE"
            else
              require
                (Nf_stdext.Bits.is_canonical (rd ctx Field.host_rip))
                "host RIP not canonical (%Lx)" (rd ctx Field.host_rip)
          end
          else begin
            (* The model CPU is in IA-32e mode; leaving it via VM exit is
               not supported. *)
            fail "host-address-space-size clear on a 64-bit host"
          end);
    };
    {
      id = "host.canonical";
      group = Host;
      doc = "Host base addresses and SYSENTER MSRs must be canonical";
      run =
        (fun ctx ->
          let fields =
            [
              Field.host_fs_base; Field.host_gs_base; Field.host_tr_base;
              Field.host_gdtr_base; Field.host_idtr_base;
              Field.host_sysenter_esp; Field.host_sysenter_eip;
            ]
          in
          let bad =
            List.find_opt
              (fun f -> not (Nf_stdext.Bits.is_canonical (rd ctx f)))
              fields
          in
          match bad with
          | None -> ok
          | Some f -> fail "host %s not canonical (%Lx)" (Field.name f) (rd ctx f));
    };
    {
      id = "host.selectors";
      group = Host;
      doc = "Host selector RPL/TI zero; CS and TR non-null";
      run =
        (fun ctx ->
          let sels =
            List.map
              (fun r -> (r, rd ctx (Field.host_selector r)))
              [ Nf_x86.Seg.ES; CS; SS; DS; FS; GS; TR ]
          in
          let bad_rpl =
            List.find_opt (fun (_, v) -> Int64.logand v 7L <> 0L) sels
          in
          match bad_rpl with
          | Some (r, v) ->
              fail "host %s selector RPL/TI set (%Lx)" (Nf_x86.Seg.register_name r) v
          | None ->
              if rd ctx Field.host_cs_selector = 0L then fail "host CS selector null"
              else if rd ctx Field.host_tr_selector = 0L then
                fail "host TR selector null"
              else if
                (not (host_addr_space ctx)) && rd ctx Field.host_ss_selector = 0L
              then fail "host SS selector null outside 64-bit mode"
              else ok);
    };
    {
      id = "host.efer";
      group = Host;
      doc = "Loaded host EFER: reserved bits zero, LMA=LME=host-address-space";
      run =
        (fun ctx ->
          if not (exitc ctx Controls.Exit.load_ia32_efer) then ok
          else begin
            let e = rd ctx Field.host_ia32_efer in
            if Int64.logand e (Int64.lognot Nf_x86.Efer.defined_mask) <> 0L then
              fail "host EFER reserved bits set (%Lx)" e
            else begin
              let lma = Nf_stdext.Bits.is_set e Nf_x86.Efer.lma in
              let lme = Nf_stdext.Bits.is_set e Nf_x86.Efer.lme in
              require
                (lma = host_addr_space ctx && lme = host_addr_space ctx)
                "host EFER.LMA/LME inconsistent with host-address-space-size"
            end
          end);
    };
    {
      id = "host.pat";
      group = Host;
      doc = "Loaded host PAT must contain valid memory types";
      run =
        (fun ctx ->
          require
            (not (exitc ctx Controls.Exit.load_ia32_pat)
            || valid_pat (rd ctx Field.host_ia32_pat))
            "host PAT invalid (%Lx)" (rd ctx Field.host_ia32_pat));
    };
    {
      id = "host.perf_global";
      group = Host;
      doc = "Loaded host IA32_PERF_GLOBAL_CTRL reserved bits must be zero";
      run =
        (fun ctx ->
          if not (exitc ctx Controls.Exit.load_perf_global_ctrl) then ok
          else begin
            let v = rd ctx (Field.find_exn "HOST_IA32_PERF_GLOBAL_CTRL") in
            require
              (Int64.logand v (Int64.lognot 0x7_0000_000FL) = 0L)
              "host PERF_GLOBAL_CTRL reserved bits set (%Lx)" v
          end);
    };
  ]

(* ------------------------------------------------------------------ *)
(* Guest-state checks (§26.3.1)                                        *)
(* ------------------------------------------------------------------ *)

let seg_ar ctx r = rd ctx (Field.guest_ar r)
let seg_usable ctx r = not (Nf_x86.Seg.Ar.is_unusable (seg_ar ctx r))

let v8086 ctx = bit ctx Field.guest_rflags Nf_x86.Rflags.vm

(* Limit/granularity consistency: with G=0 limit[31:20] must be 0; with
   G=1 limit[11:0] must be all-ones. *)
let limit_g_consistent ar limit =
  if Nf_x86.Seg.Ar.is_granular ar then
    Int64.logand limit 0xFFFL = 0xFFFL
  else Int64.logand limit 0xFFF0_0000L = 0L

let seg_check_usable ctx r =
  let open Nf_x86.Seg in
  let ar = seg_ar ctx r in
  let limit = rd ctx (Field.guest_limit r) in
  let base = rd ctx (Field.guest_base r) in
  let sel = rd ctx (Field.guest_selector r) in
  let name = register_name r in
  if Int64.logand ar Ar.reserved_mask <> 0L then
    fail "guest %s access rights reserved bits set (%Lx)" name ar
  else if not (Ar.is_present ar) then fail "guest %s not present" name
  else if not (limit_g_consistent ar limit) then
    fail "guest %s limit/granularity mismatch (AR=%Lx limit=%Lx)" name ar limit
  else begin
    match r with
    | CS ->
        let t = Ar.get_type ar in
        if not (Ar.is_code_data ar) then fail "guest CS descriptor type 0"
        else if not (t land 0x8 = 0x8 && t land 0x1 = 0x1) then
          (* must be an accessed code segment; type 3 allowed only with
             unrestricted guest *)
          if t = 3 && unrestricted ctx then ok
          else fail "guest CS type %d invalid" t
        else if
          ia32e_guest ctx && Ar.is_long ar && Ar.is_db ar
        then fail "guest CS has both L and D/B set in IA-32e mode"
        else if
          (not (unrestricted ctx))
          && t land 0xC <> 0xC (* non-conforming *)
          && Ar.get_dpl ar <> Int64.to_int (Int64.logand sel 3L)
        then fail "guest CS DPL %d != RPL %Ld" (Ar.get_dpl ar) (Int64.logand sel 3L)
        else ok
    | SS ->
        let t = Ar.get_type ar in
        if not (Ar.is_code_data ar) then fail "guest SS descriptor type 0"
        else if t <> 3 && t <> 7 then fail "guest SS type %d invalid" t
        else if
          (not (unrestricted ctx))
          && Int64.logand sel 3L
             <> Int64.logand (rd ctx (Field.guest_selector CS)) 3L
        then fail "guest SS RPL != CS RPL"
        else ok
    | DS | ES | FS | GS ->
        let t = Ar.get_type ar in
        if not (Ar.is_code_data ar) then fail "guest %s descriptor type 0" name
        else if t land 0x1 = 0 then fail "guest %s not accessed (type %d)" name t
        else if t land 0x8 = 0x8 && t land 0x2 = 0 then
          fail "guest %s is execute-only code (type %d)" name t
        else if
          (match r with FS | GS -> not (Nf_stdext.Bits.is_canonical base) | _ -> false)
        then fail "guest %s base not canonical (%Lx)" name base
        else ok
    | TR ->
        let t = Ar.get_type ar in
        if Ar.is_code_data ar then fail "guest TR descriptor S=1"
        else if t <> 11 && not (t = 3 && not (ia32e_guest ctx)) then
          fail "guest TR type %d invalid" t
        else if Int64.logand sel 4L <> 0L then fail "guest TR selector TI set"
        else if not (Nf_stdext.Bits.is_canonical base) then
          fail "guest TR base not canonical (%Lx)" base
        else ok
    | LDTR ->
        let t = Ar.get_type ar in
        if Ar.is_code_data ar then fail "guest LDTR descriptor S=1"
        else if t <> 2 then fail "guest LDTR type %d invalid" t
        else if Int64.logand sel 4L <> 0L then fail "guest LDTR selector TI set"
        else if not (Nf_stdext.Bits.is_canonical base) then
          fail "guest LDTR base not canonical (%Lx)" base
        else ok
  end

let seg_check_v8086 ctx r =
  let open Nf_x86.Seg in
  match r with
  | LDTR | TR -> ok
  | _ ->
      let sel = rd ctx (Field.guest_selector r) in
      let base = rd ctx (Field.guest_base r) in
      let limit = rd ctx (Field.guest_limit r) in
      let ar = seg_ar ctx r in
      if base <> Int64.shift_left sel 4 then
        fail "v8086 guest %s base != selector<<4" (register_name r)
      else if limit <> 0xFFFFL then
        fail "v8086 guest %s limit != 0xFFFF" (register_name r)
      else if Int64.logand ar 0x1FFFFL <> 0xF3L then
        fail "v8086 guest %s access rights != 0xF3" (register_name r)
      else ok

let seg_check ctx r =
  if v8086 ctx then seg_check_v8086 ctx r
  else begin
    match r with
    | Nf_x86.Seg.CS | TR -> seg_check_usable ctx r (* always usable *)
    | _ -> if seg_usable ctx r then seg_check_usable ctx r else ok
  end

let guest_checks =
  [
    {
      id = "guest.cr0_fixed";
      group = Guest;
      doc = "Guest CR0 must honour fixed bits (unrestricted relaxes PE/PG)";
      run =
        (fun ctx ->
          require
            (Vmx_caps.cr0_valid ~unrestricted:(unrestricted ctx) ctx.caps
               (rd ctx Field.guest_cr0))
            "guest CR0 violates fixed bits (%Lx)" (rd ctx Field.guest_cr0));
    };
    {
      id = "guest.cr0_pg_pe";
      group = Guest;
      doc = "Guest CR0.PG requires CR0.PE";
      run =
        (fun ctx ->
          require
            (not (bit ctx Field.guest_cr0 Nf_x86.Cr0.pg)
            || bit ctx Field.guest_cr0 Nf_x86.Cr0.pe)
            "guest CR0.PG without CR0.PE");
    };
    {
      id = "guest.cr4_fixed";
      group = Guest;
      doc = "Guest CR4 must honour fixed bits";
      run =
        (fun ctx ->
          require
            (Vmx_caps.cr4_valid ctx.caps (rd ctx Field.guest_cr4))
            "guest CR4 violates fixed bits (%Lx)" (rd ctx Field.guest_cr4));
    };
    {
      id = "guest.ia32e_pg";
      group = Guest;
      doc = "IA-32e mode guest requires CR0.PG";
      run =
        (fun ctx ->
          require
            ((not (ia32e_guest ctx)) || bit ctx Field.guest_cr0 Nf_x86.Cr0.pg)
            "IA-32e mode guest with CR0.PG clear");
    };
    {
      id = "guest.ia32e_pae";
      group = Guest;
      doc =
        "IA-32e mode guest requires CR4.PAE (spec rule; hardware silently \
         assumes it — the CVE-2023-30456 quirk)";
      run =
        (fun ctx ->
          require
            ((not (ia32e_guest ctx)) || bit ctx Field.guest_cr4 Nf_x86.Cr4.pae)
            "IA-32e mode guest with CR4.PAE clear");
    };
    {
      id = "guest.legacy_pcide";
      group = Guest;
      doc = "CR4.PCIDE must be clear outside IA-32e mode";
      run =
        (fun ctx ->
          require
            (ia32e_guest ctx || not (bit ctx Field.guest_cr4 Nf_x86.Cr4.pcide))
            "guest CR4.PCIDE set outside IA-32e mode");
    };
    {
      id = "guest.cr3_width";
      group = Guest;
      doc = "Guest CR3 must not exceed the physical-address width";
      run =
        (fun ctx ->
          require
            (in_phys ctx (rd ctx Field.guest_cr3))
            "guest CR3 beyond physical-address width (%Lx)"
            (rd ctx Field.guest_cr3));
    };
    {
      id = "guest.debugctl";
      group = Guest;
      doc = "Loaded guest IA32_DEBUGCTL reserved bits must be zero";
      run =
        (fun ctx ->
          if not (entryc ctx Controls.Entry.load_debug_controls) then ok
          else begin
            let v = rd ctx Field.guest_ia32_debugctl in
            require
              (Int64.logand v (Int64.lognot 0x7FC3L) = 0L)
              "guest DEBUGCTL reserved bits set (%Lx)" v
          end);
    };
    {
      id = "guest.dr7_high";
      group = Guest;
      doc = "Loaded guest DR7 bits 63:32 must be zero";
      run =
        (fun ctx ->
          require
            ((not (entryc ctx Controls.Entry.load_debug_controls))
            || Int64.shift_right_logical (rd ctx Field.guest_dr7) 32 = 0L)
            "guest DR7 upper half set (%Lx)" (rd ctx Field.guest_dr7));
    };
    {
      id = "guest.sysenter_canonical";
      group = Guest;
      doc = "Guest SYSENTER ESP/EIP must be canonical";
      run =
        (fun ctx ->
          let esp = rd ctx Field.guest_sysenter_esp in
          let eip = rd ctx Field.guest_sysenter_eip in
          if not (Nf_stdext.Bits.is_canonical esp) then
            fail "guest SYSENTER_ESP not canonical (%Lx)" esp
          else
            require
              (Nf_stdext.Bits.is_canonical eip)
              "guest SYSENTER_EIP not canonical (%Lx)" eip);
    };
    {
      id = "guest.pat";
      group = Guest;
      doc = "Loaded guest PAT must contain valid memory types";
      run =
        (fun ctx ->
          require
            (not (entryc ctx Controls.Entry.load_ia32_pat)
            || valid_pat (rd ctx Field.guest_ia32_pat))
            "guest PAT invalid (%Lx)" (rd ctx Field.guest_ia32_pat));
    };
    {
      id = "guest.efer";
      group = Guest;
      doc = "Loaded guest EFER: reserved zero, LMA = IA-32e mode, LME tied to PG";
      run =
        (fun ctx ->
          if not (entryc ctx Controls.Entry.load_ia32_efer) then ok
          else begin
            let e = rd ctx Field.guest_ia32_efer in
            if Int64.logand e (Int64.lognot Nf_x86.Efer.defined_mask) <> 0L then
              fail "guest EFER reserved bits set (%Lx)" e
            else begin
              let lma = Nf_stdext.Bits.is_set e Nf_x86.Efer.lma in
              let lme = Nf_stdext.Bits.is_set e Nf_x86.Efer.lme in
              if lma <> ia32e_guest ctx then
                fail "guest EFER.LMA != IA-32e-mode-guest control"
              else if bit ctx Field.guest_cr0 Nf_x86.Cr0.pg && lme <> lma then
                fail "guest EFER.LME != EFER.LMA with paging enabled"
              else ok
            end
          end);
    };
    {
      id = "guest.bndcfgs";
      group = Guest;
      doc = "Loaded guest BNDCFGS: canonical base, reserved bits zero";
      run =
        (fun ctx ->
          if not (entryc ctx Controls.Entry.load_bndcfgs) then ok
          else begin
            let v = rd ctx (Field.find_exn "GUEST_IA32_BNDCFGS") in
            if Int64.logand v 0xFFCL <> 0L then
              fail "guest BNDCFGS reserved bits set (%Lx)" v
            else
              require
                (Nf_stdext.Bits.is_canonical v)
                "guest BNDCFGS base not canonical (%Lx)" v
          end);
    };
    {
      id = "guest.rflags";
      group = Guest;
      doc = "Guest RFLAGS reserved bits (bit 1 set, others clear)";
      run =
        (fun ctx ->
          require
            (Nf_x86.Rflags.valid (rd ctx Field.guest_rflags))
            "guest RFLAGS reserved bits invalid (%Lx)" (rd ctx Field.guest_rflags));
    };
    {
      id = "guest.rflags_vm";
      group = Guest;
      doc = "RFLAGS.VM must be clear in IA-32e mode or without CR0.PE";
      run =
        (fun ctx ->
          if not (v8086 ctx) then ok
          else if ia32e_guest ctx then fail "RFLAGS.VM set in IA-32e mode"
          else
            require
              (bit ctx Field.guest_cr0 Nf_x86.Cr0.pe)
              "RFLAGS.VM set without CR0.PE");
    };
    {
      id = "guest.rflags_if_injection";
      group = Guest;
      doc = "RFLAGS.IF must be set when injecting an external interrupt";
      run =
        (fun ctx ->
          let ii = rd ctx Field.entry_intr_info in
          let open Nf_x86.Exn.Intr_info in
          require
            ((not (valid ii && typ ii = type_external))
            || bit ctx Field.guest_rflags Nf_x86.Rflags.if_)
            "external-interrupt injection with RFLAGS.IF clear");
    };
    {
      id = "guest.activity";
      group = Guest;
      doc = "Activity state must be a supported value";
      run =
        (fun ctx ->
          let a = rd ctx Field.guest_activity_state in
          let supported =
            a = Field.Activity.active
            || (a = Field.Activity.hlt && ctx.caps.activity_hlt)
            || (a = Field.Activity.shutdown && ctx.caps.activity_shutdown)
            || (a = Field.Activity.wait_for_sipi && ctx.caps.activity_wait_sipi)
          in
          require supported "guest activity state %Ld unsupported" a);
    };
    {
      id = "guest.activity_hlt_dpl";
      group = Guest;
      doc = "HLT activity state requires SS.DPL = 0";
      run =
        (fun ctx ->
          require
            (rd ctx Field.guest_activity_state <> Field.Activity.hlt
            || Nf_x86.Seg.Ar.get_dpl (seg_ar ctx Nf_x86.Seg.SS) = 0)
            "HLT activity state with SS.DPL != 0");
    };
    {
      id = "guest.activity_sipi_injection";
      group = Guest;
      doc = "No event injection in WAIT-FOR-SIPI activity state";
      run =
        (fun ctx ->
          require
            (rd ctx Field.guest_activity_state <> Field.Activity.wait_for_sipi
            || not (Nf_x86.Exn.Intr_info.valid (rd ctx Field.entry_intr_info)))
            "event injection in wait-for-SIPI activity state");
    };
    {
      id = "guest.interruptibility";
      group = Guest;
      doc = "Interruptibility state: reserved bits, STI/MOV-SS exclusivity";
      run =
        (fun ctx ->
          let v = rd ctx Field.guest_interruptibility in
          let sti = Nf_stdext.Bits.is_set v 0 in
          let movss = Nf_stdext.Bits.is_set v 1 in
          if Int64.logand v (Int64.lognot 0x1FL) <> 0L then
            fail "interruptibility reserved bits set (%Lx)" v
          else if sti && movss then fail "STI and MOV-SS blocking both set"
          else if sti && not (bit ctx Field.guest_rflags Nf_x86.Rflags.if_) then
            fail "STI blocking with RFLAGS.IF clear"
          else begin
            let ii = rd ctx Field.entry_intr_info in
            let open Nf_x86.Exn.Intr_info in
            if valid ii && typ ii = type_nmi && movss then
              fail "NMI injection with MOV-SS blocking"
            else ok
          end);
    };
    {
      id = "guest.pending_dbg";
      group = Guest;
      doc = "Pending debug exceptions: reserved bits, BS vs TF consistency";
      run =
        (fun ctx ->
          let v = rd ctx Field.guest_pending_dbg in
          if Int64.logand v (Int64.lognot 0x1_F00FL) <> 0L then
            fail "pending debug exceptions reserved bits set (%Lx)" v
          else begin
            let interruptibility = rd ctx Field.guest_interruptibility in
            let blocked =
              Nf_stdext.Bits.is_set interruptibility 0
              || Nf_stdext.Bits.is_set interruptibility 1
              || rd ctx Field.guest_activity_state = Field.Activity.hlt
            in
            if not blocked then ok
            else begin
              let bs = Nf_stdext.Bits.is_set v 14 in
              let tf = bit ctx Field.guest_rflags Nf_x86.Rflags.tf in
              let btf = Nf_stdext.Bits.is_set (rd ctx Field.guest_ia32_debugctl) 1 in
              if tf && (not btf) && not bs then
                fail "pending debug BS clear with RFLAGS.TF set"
              else if (not tf || btf) && bs then
                fail "pending debug BS set without single-stepping"
              else ok
            end
          end);
    };
    {
      id = "guest.vmcs_link";
      group = Guest;
      doc = "VMCS link pointer must be all-ones (no shadow VMCS)";
      run =
        (fun ctx ->
          let v = rd ctx Field.vmcs_link_pointer in
          if v = -1L then ok
          else if proc2 ctx Controls.Proc2.vmcs_shadowing then
            require
              (page_aligned v && in_phys ctx v)
              "shadow VMCS link pointer invalid (%Lx)" v
          else fail "VMCS link pointer not ~0 (%Lx)" v);
    };
    {
      id = "guest.pdpte";
      group = Guest;
      doc = "PAE paging: loaded PDPTEs must have reserved bits clear";
      run =
        (fun ctx ->
          let pae_paging =
            bit ctx Field.guest_cr0 Nf_x86.Cr0.pg
            && bit ctx Field.guest_cr4 Nf_x86.Cr4.pae
            && not (ia32e_guest ctx)
          in
          if not (pae_paging && proc2 ctx Controls.Proc2.enable_ept) then ok
          else begin
            let reserved = Int64.lognot (Int64.logor (Vmx_caps.physaddr_mask ctx.caps) 1L) in
            let bad =
              List.find_opt
                (fun i ->
                  let v = rd ctx (Field.find_exn (Printf.sprintf "GUEST_PDPTE%d" i)) in
                  Nf_stdext.Bits.is_set v 0 && Int64.logand v reserved <> 0L)
                [ 0; 1; 2; 3 ]
            in
            match bad with
            | None -> ok
            | Some i -> fail "guest PDPTE%d reserved bits set" i
          end);
    };
    {
      id = "guest.gdtr_idtr";
      group = Guest;
      doc = "GDTR/IDTR bases canonical, limits within 16 bits";
      run =
        (fun ctx ->
          let gb = rd ctx Field.guest_gdtr_base and ib = rd ctx Field.guest_idtr_base in
          if not (Nf_stdext.Bits.is_canonical gb) then
            fail "guest GDTR base not canonical (%Lx)" gb
          else if not (Nf_stdext.Bits.is_canonical ib) then
            fail "guest IDTR base not canonical (%Lx)" ib
          else if Int64.shift_right_logical (rd ctx Field.guest_gdtr_limit) 16 <> 0L then
            fail "guest GDTR limit beyond 16 bits"
          else
            require
              (Int64.shift_right_logical (rd ctx Field.guest_idtr_limit) 16 = 0L)
              "guest IDTR limit beyond 16 bits");
    };
    {
      id = "guest.rip";
      group = Guest;
      doc = "Guest RIP: upper bits clear outside 64-bit code, else canonical";
      run =
        (fun ctx ->
          let rip = rd ctx Field.guest_rip in
          let cs_long = Nf_x86.Seg.Ar.is_long (seg_ar ctx Nf_x86.Seg.CS) in
          if ia32e_guest ctx && cs_long then
            require (Nf_stdext.Bits.is_canonical rip) "guest RIP not canonical (%Lx)" rip
          else
            require
              (Int64.shift_right_logical rip 32 = 0L)
              "guest RIP upper half set outside 64-bit code (%Lx)" rip);
    };
    {
      id = "guest.seg.cs";
      group = Guest;
      doc = "Guest CS register checks";
      run = (fun ctx -> seg_check ctx Nf_x86.Seg.CS);
    };
    {
      id = "guest.seg.ss";
      group = Guest;
      doc = "Guest SS register checks";
      run = (fun ctx -> seg_check ctx Nf_x86.Seg.SS);
    };
    {
      id = "guest.seg.ds";
      group = Guest;
      doc = "Guest DS register checks";
      run = (fun ctx -> seg_check ctx Nf_x86.Seg.DS);
    };
    {
      id = "guest.seg.es";
      group = Guest;
      doc = "Guest ES register checks";
      run = (fun ctx -> seg_check ctx Nf_x86.Seg.ES);
    };
    {
      id = "guest.seg.fs";
      group = Guest;
      doc = "Guest FS register checks";
      run = (fun ctx -> seg_check ctx Nf_x86.Seg.FS);
    };
    {
      id = "guest.seg.gs";
      group = Guest;
      doc = "Guest GS register checks";
      run = (fun ctx -> seg_check ctx Nf_x86.Seg.GS);
    };
    {
      id = "guest.seg.ldtr";
      group = Guest;
      doc = "Guest LDTR register checks";
      run = (fun ctx -> seg_check ctx Nf_x86.Seg.LDTR);
    };
    {
      id = "guest.seg.tr";
      group = Guest;
      doc = "Guest TR register checks";
      run = (fun ctx -> seg_check ctx Nf_x86.Seg.TR);
    };
  ]

let all = ctl_checks @ host_checks @ guest_checks

let by_id =
  let h = Hashtbl.create 97 in
  List.iter (fun c -> Hashtbl.replace h c.id c) all;
  fun id ->
    match Hashtbl.find_opt h id with
    | Some c -> c
    | None -> invalid_arg (Printf.sprintf "unknown VMX check %S" id)

let ids = List.map (fun c -> c.id) all

(** Run every check of [group] in table order; first failure wins, as on
    hardware. [skip] suppresses individual checks (hardware quirks, or a
    hypervisor's missing replication). *)
let run_group ?(skip = fun _ -> false) group ctx =
  let rec go = function
    | [] -> Ok ()
    | c :: rest ->
        if c.group <> group || skip c.id then go rest
        else begin
          match c.run ctx with
          | Ok () -> go rest
          | Error msg -> Error (c, msg)
        end
  in
  go all

let run_all ?skip ctx =
  match run_group ?skip Ctl ctx with
  | Error _ as e -> e
  | Ok () -> (
      match run_group ?skip Host ctx with
      | Error _ as e -> e
      | Ok () -> run_group ?skip Guest ctx)
