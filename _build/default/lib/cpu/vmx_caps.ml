(** VMX capability model — the IA32_VMX_* MSRs of a physical CPU, masked by
    the vCPU configuration.

    Each 32-bit control field is constrained by an (allowed0, allowed1)
    pair: bits set in [allowed0] must be 1 in the control, bits clear in
    [allowed1] must be 0.  CR0/CR4 are constrained by fixed0/fixed1 the
    same way.  These are the invariants the VM state validator rounds
    toward and the physical CPU enforces. *)

open Nf_vmcs

type ctl_caps = { allowed0 : int64; allowed1 : int64 }

let ctl_valid c v =
  Int64.logand v (Int64.lognot c.allowed1) = 0L
  && Int64.logand (Int64.lognot v) c.allowed0 = 0L

(** Round a control value to validity: force allowed0 bits on and clear
    everything outside allowed1. *)
let ctl_round c v =
  Int64.logand (Int64.logor v c.allowed0) c.allowed1

type t = {
  revision_id : int;
  pin : ctl_caps;
  proc : ctl_caps;
  proc2 : ctl_caps;
  exit : ctl_caps;
  entry : ctl_caps;
  cr0_fixed0 : int64;
  cr0_fixed1 : int64;
  cr4_fixed0 : int64;
  cr4_fixed1 : int64;
  activity_hlt : bool;
  activity_shutdown : bool;
  activity_wait_sipi : bool;
  max_msr_list : int; (* entries allowed in MSR-load/store areas *)
  maxphyaddr : int;
  has_ept_wb : bool;
  has_ept_uc : bool;
  has_ept_ad : bool;
  has_ept_5level : bool;
}

let cr0_valid ?(unrestricted = false) t v =
  let fixed0 =
    if unrestricted then
      (* Unrestricted guest relaxes PE and PG. *)
      Nf_stdext.Bits.clear (Nf_stdext.Bits.clear t.cr0_fixed0 Nf_x86.Cr0.pe) Nf_x86.Cr0.pg
    else t.cr0_fixed0
  in
  Int64.logand (Int64.lognot v) fixed0 = 0L
  && Int64.logand v (Int64.lognot t.cr0_fixed1) = 0L

let cr0_round ?(unrestricted = false) t v =
  let fixed0 =
    if unrestricted then
      Nf_stdext.Bits.clear (Nf_stdext.Bits.clear t.cr0_fixed0 Nf_x86.Cr0.pe) Nf_x86.Cr0.pg
    else t.cr0_fixed0
  in
  Int64.logand (Int64.logor v fixed0) t.cr0_fixed1

let cr4_valid t v =
  Int64.logand (Int64.lognot v) t.cr4_fixed0 = 0L
  && Int64.logand v (Int64.lognot t.cr4_fixed1) = 0L

let cr4_round t v = Int64.logand (Int64.logor v t.cr4_fixed0) t.cr4_fixed1

let physaddr_mask t = Nf_stdext.Bits.mask t.maxphyaddr

let addr_in_physaddr t v = Int64.logand v (Int64.lognot (physaddr_mask t)) = 0L

let set_bits bits = List.fold_left Nf_stdext.Bits.set 0L bits

(** Capability MSRs of the evaluation machine's Intel CPU (Core i9-12900K,
    Alder Lake): all the features the paper's vCPU configurator toggles
    are available in hardware. *)
let alder_lake : t =
  let open Controls in
  {
    revision_id = 0x4;
    pin =
      { allowed0 = Pin.default1; allowed1 = Int64.logor Pin.default1 (set_bits Pin.defined) };
    proc =
      { allowed0 = Proc.default1; allowed1 = Int64.logor Proc.default1 (set_bits Proc.defined) };
    proc2 = { allowed0 = 0L; allowed1 = set_bits Proc2.defined };
    exit =
      { allowed0 = Exit.default1; allowed1 = Int64.logor Exit.default1 (set_bits Exit.defined) };
    entry =
      { allowed0 = Entry.default1; allowed1 = Int64.logor Entry.default1 (set_bits Entry.defined) };
    (* CR0: PE, NE, PG must be 1 (PE/PG relaxed by unrestricted guest). *)
    cr0_fixed0 = set_bits [ Nf_x86.Cr0.pe; Nf_x86.Cr0.ne; Nf_x86.Cr0.pg ];
    cr0_fixed1 = Nf_x86.Cr0.defined_mask;
    (* CR4: VMXE must be 1. *)
    cr4_fixed0 = set_bits [ Nf_x86.Cr4.vmxe ];
    cr4_fixed1 = Nf_x86.Cr4.defined_mask;
    activity_hlt = true;
    activity_shutdown = true;
    activity_wait_sipi = true;
    max_msr_list = 512;
    maxphyaddr = 46;
    has_ept_wb = true;
    has_ept_uc = true;
    has_ept_ad = true;
    has_ept_5level = false;
  }

(** An older-generation part (Nehalem-era, as discussed in §2.1: early
    CPUs lacked unrestricted guest, EPT accessed/dirty flags, the
    preemption timer and most secondary controls).  Useful for testing
    that the validator and the golden template adapt to the capability
    envelope rather than assuming modern silicon. *)
let nehalem : t =
  let open Controls in
  let base = alder_lake in
  let drop caps bits =
    let m = Int64.lognot (set_bits bits) in
    { allowed0 = Int64.logand caps.allowed0 m;
      allowed1 = Int64.logand caps.allowed1 m }
  in
  {
    base with
    revision_id = 0xE;
    pin = drop base.pin [ Pin.process_posted_interrupts; Pin.preemption_timer ];
    proc2 =
      drop base.proc2
        [ Proc2.unrestricted_guest; Proc2.apic_register_virtualization;
          Proc2.virtual_interrupt_delivery; Proc2.virtualize_x2apic;
          Proc2.enable_pml; Proc2.enable_vmfunc; Proc2.vmcs_shadowing;
          Proc2.use_tsc_scaling; Proc2.enable_xsaves; Proc2.rdrand_exiting;
          Proc2.rdseed_exiting; Proc2.enable_invpcid;
          Proc2.enable_encls_exiting; Proc2.enable_enclv_exiting;
          Proc2.ept_violation_ve; Proc2.mode_based_ept_exec;
          Proc2.sub_page_write_permission; Proc2.pt_uses_guest_pa;
          Proc2.conceal_vmx_from_pt; Proc2.enable_user_wait_pause ];
    entry =
      drop base.entry
        [ Entry.load_bndcfgs; Entry.load_rtit_ctl; Entry.load_cet_state;
          Entry.load_pkrs; Entry.conceal_vmx_from_pt ];
    exit =
      drop base.exit
        [ Exit.clear_bndcfgs; Exit.clear_rtit_ctl; Exit.load_cet_state;
          Exit.load_pkrs; Exit.conceal_vmx_from_pt; Exit.save_preemption_timer ];
    activity_wait_sipi = false;
    max_msr_list = 128;
    maxphyaddr = 40;
    has_ept_ad = false;
    has_ept_5level = false;
  }

(** Mask the physical capabilities by a vCPU feature configuration: the
    virtual CPU the L1 hypervisor sees advertises only enabled features.
    This is what makes the vCPU configurator change L0 behaviour. *)
let apply_features (t : t) (f : Features.t) : t =
  let open Controls in
  let f = Features.normalize f in
  let clear_in caps bits =
    let m = Int64.lognot (set_bits bits) in
    { allowed0 = Int64.logand caps.allowed0 m; allowed1 = Int64.logand caps.allowed1 m }
  in
  let proc2 = t.proc2 in
  let proc2 = if f.ept then proc2 else clear_in proc2 [ Proc2.enable_ept; Proc2.ept_violation_ve; Proc2.mode_based_ept_exec; Proc2.sub_page_write_permission ] in
  let proc2 = if f.unrestricted_guest then proc2 else clear_in proc2 [ Proc2.unrestricted_guest ] in
  let proc2 = if f.vpid then proc2 else clear_in proc2 [ Proc2.enable_vpid ] in
  let proc2 = if f.vmcs_shadowing then proc2 else clear_in proc2 [ Proc2.vmcs_shadowing ] in
  let proc2 =
    if f.apicv then proc2
    else clear_in proc2 [ Proc2.apic_register_virtualization; Proc2.virtual_interrupt_delivery ]
  in
  let proc2 = if f.pml then proc2 else clear_in proc2 [ Proc2.enable_pml ] in
  let proc2 = if f.vmfunc then proc2 else clear_in proc2 [ Proc2.enable_vmfunc ] in
  let proc2 = if f.tsc_scaling then proc2 else clear_in proc2 [ Proc2.use_tsc_scaling ] in
  let proc2 = if f.xsaves then proc2 else clear_in proc2 [ Proc2.enable_xsaves ] in
  let pin = t.pin in
  let pin = if f.posted_interrupts then pin else clear_in pin [ Pin.process_posted_interrupts ] in
  let pin = if f.preemption_timer then pin else clear_in pin [ Pin.preemption_timer ] in
  { t with pin; proc2; has_ept_ad = t.has_ept_ad && f.ept_ad }
