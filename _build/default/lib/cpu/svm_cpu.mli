(** Physical-CPU oracle for AMD-V: VMRUN consistency checking. *)

type outcome =
  | Entered
  | Vmexit_invalid of { check : Svm_checks.check; msg : string }
      (** VMRUN failed its consistency checks: EXITCODE = VMEXIT_INVALID *)

val outcome_name : outcome -> string
val pp_outcome : Format.formatter -> outcome -> unit

(** Kept for interface symmetry with the Intel oracle; empty — the
    EFER.LME && !CR0.PG ambiguity is modelled by *absence* of a check. *)
val hardware_skips : string list

val vmrun : caps:Svm_caps.t -> Nf_vmcb.Vmcb.t -> outcome

(** Is the VMCB in the "legacy mode with long mode armed" corner
    (EFER.LME set, CR0.PG clear)?  Hardware permits it; how a nested
    hypervisor mirrors it into VMCB02 is where Xen goes wrong. *)
val lme_without_paging : Nf_vmcb.Vmcb.t -> bool
