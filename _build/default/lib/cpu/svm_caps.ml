(** AMD-V (SVM) capability model, masked by the vCPU configuration. *)

type t = {
  maxphyaddr : int;
  has_npt : bool;
  has_nrips : bool;
  has_vgif : bool;
  has_avic : bool;
  has_vls : bool; (* virtual VMLOAD/VMSAVE *)
  has_pause_filter : bool;
  has_lbr_virt : bool;
}

(** The evaluation machines' AMD CPUs (Threadripper PRO 5995WX / Ryzen 9
    5950X — both Zen 3). *)
let zen3 : t =
  {
    maxphyaddr = 48;
    has_npt = true;
    has_nrips = true;
    has_vgif = true;
    has_avic = true;
    has_vls = true;
    has_pause_filter = true;
    has_lbr_virt = true;
  }

let physaddr_mask t = Nf_stdext.Bits.mask t.maxphyaddr

let addr_in_physaddr t v = Int64.logand v (Int64.lognot (physaddr_mask t)) = 0L

let apply_features (t : t) (f : Features.t) : t =
  let f = Features.normalize f in
  {
    t with
    has_npt = t.has_npt && f.npt;
    has_nrips = t.has_nrips && f.nrips;
    has_vgif = t.has_vgif && f.vgif;
    has_avic = t.has_avic && f.avic;
    has_vls = t.has_vls && f.vls;
    has_pause_filter = t.has_pause_filter && f.pause_filter;
  }
