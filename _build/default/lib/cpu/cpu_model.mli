(** Physical CPU models used in the paper's evaluation. *)

type vendor = Intel | Amd

val vendor_name : vendor -> string

type t = {
  vendor : vendor;
  model_name : string;
  vmx : Vmx_caps.t option;
  svm : Svm_caps.t option;
}

val intel_i9_12900k : t
val amd_threadripper_5995wx : t
val amd_ryzen_5950x : t

val vmx_caps_exn : t -> Vmx_caps.t
val svm_caps_exn : t -> Svm_caps.t
