(** AMD-V (SVM) capability model, masked by the vCPU configuration. *)

type t = {
  maxphyaddr : int;
  has_npt : bool;
  has_nrips : bool;
  has_vgif : bool;
  has_avic : bool;
  has_vls : bool;
  has_pause_filter : bool;
  has_lbr_virt : bool;
}

(** The evaluation machines' AMD CPUs (Threadripper PRO 5995WX / Ryzen 9
    5950X — both Zen 3). *)
val zen3 : t

val physaddr_mask : t -> int64
val addr_in_physaddr : t -> int64 -> bool
val apply_features : t -> Features.t -> t
