(** Guest instructions the execution harness can run in L2 (or L1).

    These are the "exit-triggering instruction templates" of Table 1: each
    constructor is one instruction class with its parameters.  The CPU
    model decides whether executing it in non-root mode causes a VM exit
    under the current controls. *)

type t =
  | Cpuid of int (* leaf *)
  | Hlt
  | Pause
  | Mwait
  | Monitor
  | Invd
  | Wbinvd
  | Invlpg of int64
  | Rdtsc
  | Rdtscp
  | Rdpmc
  | Rdrand
  | Rdseed
  | Xsetbv of int64
  | Vmcall
  | Mov_to_cr of int * int64 (* cr number, value *)
  | Mov_from_cr of int
  | Mov_dr of int
  | Io_in of int (* port *)
  | Io_out of int * int (* port, value *)
  | Rdmsr of int
  | Wrmsr of int * int64
  | Vmx_in_guest of string (* any VMX instruction executed in L2 *)
  | Soft_int of int (* INT n *)
  | Ud2 (* invalid opcode *)
  | Nop
  (* Asynchronous pseudo-events (the §6.3 extension): injected by the
     harness on a deterministic schedule rather than decoded from guest
     code. *)
  | Ext_interrupt of int (* external interrupt, vector *)
  | Nmi_event

let name = function
  | Cpuid _ -> "cpuid"
  | Hlt -> "hlt"
  | Pause -> "pause"
  | Mwait -> "mwait"
  | Monitor -> "monitor"
  | Invd -> "invd"
  | Wbinvd -> "wbinvd"
  | Invlpg _ -> "invlpg"
  | Rdtsc -> "rdtsc"
  | Rdtscp -> "rdtscp"
  | Rdpmc -> "rdpmc"
  | Rdrand -> "rdrand"
  | Rdseed -> "rdseed"
  | Xsetbv _ -> "xsetbv"
  | Vmcall -> "vmcall"
  | Mov_to_cr (n, _) -> Printf.sprintf "mov cr%d, r" n
  | Mov_from_cr n -> Printf.sprintf "mov r, cr%d" n
  | Mov_dr n -> Printf.sprintf "mov dr%d" n
  | Io_in p -> Printf.sprintf "in 0x%x" p
  | Io_out (p, _) -> Printf.sprintf "out 0x%x" p
  | Rdmsr m -> Printf.sprintf "rdmsr %s" (Nf_x86.Msr.name m)
  | Wrmsr (m, _) -> Printf.sprintf "wrmsr %s" (Nf_x86.Msr.name m)
  | Vmx_in_guest i -> i ^ " (in guest)"
  | Soft_int n -> Printf.sprintf "int %d" n
  | Ud2 -> "ud2"
  | Nop -> "nop"
  | Ext_interrupt v -> Printf.sprintf "ext-intr %d" v
  | Nmi_event -> "nmi"
