(** VMX capability model — the IA32_VMX_* MSRs of a physical CPU, masked
    by the vCPU configuration.

    Each 32-bit control field is constrained by an (allowed0, allowed1)
    pair: bits set in [allowed0] must be 1, bits clear in [allowed1] must
    be 0.  CR0/CR4 are constrained by fixed0/fixed1 the same way.  These
    are the invariants the VM state validator rounds toward and the
    physical CPU enforces. *)

type ctl_caps = { allowed0 : int64; allowed1 : int64 }

val ctl_valid : ctl_caps -> int64 -> bool

(** Force allowed0 bits on and clear everything outside allowed1. *)
val ctl_round : ctl_caps -> int64 -> int64

type t = {
  revision_id : int;
  pin : ctl_caps;
  proc : ctl_caps;
  proc2 : ctl_caps;
  exit : ctl_caps;
  entry : ctl_caps;
  cr0_fixed0 : int64;
  cr0_fixed1 : int64;
  cr4_fixed0 : int64;
  cr4_fixed1 : int64;
  activity_hlt : bool;
  activity_shutdown : bool;
  activity_wait_sipi : bool;
  max_msr_list : int;
  maxphyaddr : int;
  has_ept_wb : bool;
  has_ept_uc : bool;
  has_ept_ad : bool;
  has_ept_5level : bool;
}

(** [unrestricted] relaxes the CR0.PE/PG fixed bits. *)
val cr0_valid : ?unrestricted:bool -> t -> int64 -> bool

val cr0_round : ?unrestricted:bool -> t -> int64 -> int64
val cr4_valid : t -> int64 -> bool
val cr4_round : t -> int64 -> int64

val physaddr_mask : t -> int64
val addr_in_physaddr : t -> int64 -> bool

(** The evaluation machine's Intel CPU (Core i9-12900K, Alder Lake). *)
val alder_lake : t

(** An older-generation part without unrestricted guest, EPT A/D flags,
    the preemption timer or most secondary controls (§2.1's point that
    feature availability varies across CPU generations). *)
val nehalem : t

(** Mask the physical capabilities by a vCPU feature configuration: the
    virtual CPU the L1 hypervisor sees advertises only enabled
    features. *)
val apply_features : t -> Features.t -> t
