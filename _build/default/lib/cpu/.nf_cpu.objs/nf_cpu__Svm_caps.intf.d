lib/cpu/svm_caps.mli: Features
