lib/cpu/svm_checks.ml: Format Hashtbl Int64 List Nf_stdext Nf_vmcb Nf_x86 Printf Svm_caps
