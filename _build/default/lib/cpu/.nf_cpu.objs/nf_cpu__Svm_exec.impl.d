lib/cpu/svm_exec.ml: Insn Int64 Nf_stdext Nf_vmcb Nf_x86 Vmcb
