lib/cpu/vmx_checks.mli: Nf_vmcs Vmx_caps
