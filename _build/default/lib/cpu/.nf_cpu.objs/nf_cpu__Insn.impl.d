lib/cpu/insn.ml: Nf_x86 Printf
