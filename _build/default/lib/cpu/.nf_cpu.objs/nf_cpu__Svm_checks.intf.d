lib/cpu/svm_checks.mli: Nf_vmcb Svm_caps
