lib/cpu/features.mli: Format
