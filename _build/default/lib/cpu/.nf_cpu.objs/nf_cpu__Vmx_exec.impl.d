lib/cpu/vmx_exec.ml: Controls Exit_reason Field Insn Int64 Nf_stdext Nf_vmcs Nf_x86 Pin Printf Proc Proc2 Vmcs
