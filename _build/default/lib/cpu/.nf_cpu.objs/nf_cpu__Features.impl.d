lib/cpu/features.ml: Format Fun List String
