lib/cpu/vmx_cpu.ml: Array Field Format Int64 List Nf_stdext Nf_vmcs Nf_x86 Printf Vmcs Vmx_caps Vmx_checks
