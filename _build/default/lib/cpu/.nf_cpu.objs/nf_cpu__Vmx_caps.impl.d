lib/cpu/vmx_caps.ml: Controls Entry Exit Features Int64 List Nf_stdext Nf_vmcs Nf_x86 Pin Proc Proc2
