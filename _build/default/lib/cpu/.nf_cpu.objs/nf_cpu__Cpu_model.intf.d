lib/cpu/cpu_model.mli: Svm_caps Vmx_caps
