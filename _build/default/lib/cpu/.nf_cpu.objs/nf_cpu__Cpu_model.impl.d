lib/cpu/cpu_model.ml: Svm_caps Vmx_caps
