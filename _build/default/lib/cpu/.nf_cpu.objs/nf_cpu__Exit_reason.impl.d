lib/cpu/exit_reason.ml: Int64 Printf
