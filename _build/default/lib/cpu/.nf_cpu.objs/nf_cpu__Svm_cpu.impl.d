lib/cpu/svm_cpu.ml: Format List Nf_stdext Nf_vmcb Nf_x86 Svm_caps Svm_checks
