lib/cpu/svm_cpu.mli: Format Nf_vmcb Svm_caps Svm_checks
