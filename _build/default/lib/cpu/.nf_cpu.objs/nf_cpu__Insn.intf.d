lib/cpu/insn.mli:
