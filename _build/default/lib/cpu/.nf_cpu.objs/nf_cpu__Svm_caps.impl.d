lib/cpu/svm_caps.ml: Features Int64 Nf_stdext
