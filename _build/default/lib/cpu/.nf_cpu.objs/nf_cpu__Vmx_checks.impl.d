lib/cpu/vmx_checks.ml: Ar Controls Field Format Hashtbl Int64 List Nf_stdext Nf_vmcs Nf_x86 Printf Vmcs Vmx_caps
