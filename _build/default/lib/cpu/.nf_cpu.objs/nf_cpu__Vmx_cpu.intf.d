lib/cpu/vmx_cpu.mli: Format Nf_vmcs Vmx_caps Vmx_checks
