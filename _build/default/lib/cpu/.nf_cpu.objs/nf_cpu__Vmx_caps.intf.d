lib/cpu/vmx_caps.mli: Features
