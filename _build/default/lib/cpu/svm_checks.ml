(** VMRUN canonicalization and consistency checks (AMD APM Vol. 2 §15.5.1).

    Violations cause VMRUN to exit immediately with VMEXIT_INVALID; no
    guest instruction runs.  As on the Intel side, the table is shared by
    the CPU oracle, the validator, and the hypervisors' replicated
    checks.

    One deliberate *absence*: the APM permits EFER.LME=1 with CR0.PG=0
    (legacy mode with long mode armed) and does not define how VMRUN
    should treat it — the architectural ambiguity behind the Xen nested
    SVM bug (paper §5.5.2).  Hardware accepts the state, so there is no
    check for it here. *)

type ctx = { caps : Svm_caps.t; vmcb : Nf_vmcb.Vmcb.t }

type check = { id : string; doc : string; run : ctx -> (unit, string) result }

let fail fmt = Format.kasprintf (fun s -> Error s) fmt

let require b fmt =
  if b then Format.ikfprintf (fun _ -> Ok ()) Format.str_formatter fmt
  else Format.kasprintf (fun s -> Error s) fmt

let rd ctx f = Nf_vmcb.Vmcb.read ctx.vmcb f
let bit ctx f n = Nf_stdext.Bits.is_set (rd ctx f) n

let all =
  [
    {
      id = "svm.efer_svme";
      doc = "EFER.SVME must be set";
      run =
        (fun ctx ->
          require
            (bit ctx Nf_vmcb.Vmcb.efer Nf_x86.Efer.svme)
            "EFER.SVME clear in VMCB");
    };
    {
      id = "svm.efer_reserved";
      doc = "EFER reserved bits must be zero";
      run =
        (fun ctx ->
          let e = rd ctx Nf_vmcb.Vmcb.efer in
          require
            (Int64.logand e (Int64.lognot Nf_x86.Efer.defined_mask) = 0L)
            "EFER reserved bits set (%Lx)" e);
    };
    {
      id = "svm.cr0_cd_nw";
      doc = "CR0.CD clear with CR0.NW set is illegal";
      run =
        (fun ctx ->
          require
            (not
               (bit ctx Nf_vmcb.Vmcb.cr0 Nf_x86.Cr0.nw
               && not (bit ctx Nf_vmcb.Vmcb.cr0 Nf_x86.Cr0.cd)))
            "CR0.NW set with CR0.CD clear");
    };
    {
      id = "svm.cr0_high";
      doc = "CR0[63:32] must be zero";
      run =
        (fun ctx ->
          require
            (Int64.shift_right_logical (rd ctx Nf_vmcb.Vmcb.cr0) 32 = 0L)
            "CR0 upper half set (%Lx)" (rd ctx Nf_vmcb.Vmcb.cr0));
    };
    {
      id = "svm.cr3_mbz";
      doc = "CR3 must-be-zero bits (beyond physical width)";
      run =
        (fun ctx ->
          require
            (Svm_caps.addr_in_physaddr ctx.caps (rd ctx Nf_vmcb.Vmcb.cr3))
            "CR3 beyond physical-address width (%Lx)" (rd ctx Nf_vmcb.Vmcb.cr3));
    };
    {
      id = "svm.cr4_reserved";
      doc = "CR4 reserved bits must be zero";
      run =
        (fun ctx ->
          let v = rd ctx Nf_vmcb.Vmcb.cr4 in
          require
            (Int64.logand v (Int64.lognot Nf_x86.Cr4.defined_mask) = 0L)
            "CR4 reserved bits set (%Lx)" v);
    };
    {
      id = "svm.dr6_high";
      doc = "DR6[63:32] must be zero";
      run =
        (fun ctx ->
          require
            (Int64.shift_right_logical (rd ctx Nf_vmcb.Vmcb.dr6) 32 = 0L)
            "DR6 upper half set");
    };
    {
      id = "svm.dr7_high";
      doc = "DR7[63:32] must be zero";
      run =
        (fun ctx ->
          require
            (Int64.shift_right_logical (rd ctx Nf_vmcb.Vmcb.dr7) 32 = 0L)
            "DR7 upper half set");
    };
    {
      id = "svm.long_mode_pae";
      doc = "EFER.LME && CR0.PG requires CR4.PAE";
      run =
        (fun ctx ->
          require
            (not
               (bit ctx Nf_vmcb.Vmcb.efer Nf_x86.Efer.lme
               && bit ctx Nf_vmcb.Vmcb.cr0 Nf_x86.Cr0.pg
               && not (bit ctx Nf_vmcb.Vmcb.cr4 Nf_x86.Cr4.pae)))
            "long mode paging without CR4.PAE");
    };
    {
      id = "svm.long_mode_pe";
      doc = "EFER.LME && CR0.PG requires CR0.PE";
      run =
        (fun ctx ->
          require
            (not
               (bit ctx Nf_vmcb.Vmcb.efer Nf_x86.Efer.lme
               && bit ctx Nf_vmcb.Vmcb.cr0 Nf_x86.Cr0.pg
               && not (bit ctx Nf_vmcb.Vmcb.cr0 Nf_x86.Cr0.pe)))
            "long mode paging without CR0.PE");
    };
    {
      id = "svm.long_mode_cs";
      doc = "64-bit mode forbids CS.L together with CS.D";
      run =
        (fun ctx ->
          let attrib = rd ctx (Nf_vmcb.Vmcb.seg_attrib Nf_x86.Seg.CS) in
          let l = Nf_stdext.Bits.is_set attrib 9 in
          let d = Nf_stdext.Bits.is_set attrib 10 in
          (* VMCB attrib format: bits 0..11 of the descriptor's 52..63. *)
          require
            (not
               (bit ctx Nf_vmcb.Vmcb.efer Nf_x86.Efer.lme
               && bit ctx Nf_vmcb.Vmcb.cr0 Nf_x86.Cr0.pg
               && bit ctx Nf_vmcb.Vmcb.cr4 Nf_x86.Cr4.pae
               && l && d))
            "CS.L and CS.D both set in long mode");
    };
    {
      id = "svm.asid";
      doc = "Guest ASID must not be zero";
      run =
        (fun ctx ->
          require (rd ctx Nf_vmcb.Vmcb.guest_asid <> 0L) "guest ASID is 0");
    };
    {
      id = "svm.vmrun_intercept";
      doc = "The VMRUN intercept must be set";
      run =
        (fun ctx ->
          require
            (bit ctx Nf_vmcb.Vmcb.intercept_vec4 Nf_vmcb.Vmcb.Vec4.vmrun)
            "VMRUN intercept clear");
    };
    {
      id = "svm.iopm_mbz";
      doc = "IOPM base must be within the physical-address width";
      run =
        (fun ctx ->
          require
            (Svm_caps.addr_in_physaddr ctx.caps (rd ctx Nf_vmcb.Vmcb.iopm_base_pa))
            "IOPM base beyond physical width");
    };
    {
      id = "svm.msrpm_mbz";
      doc = "MSRPM base must be within the physical-address width";
      run =
        (fun ctx ->
          require
            (Svm_caps.addr_in_physaddr ctx.caps (rd ctx Nf_vmcb.Vmcb.msrpm_base_pa))
            "MSRPM base beyond physical width");
    };
    {
      id = "svm.npt_supported";
      doc = "Nested paging may only be enabled when supported";
      run =
        (fun ctx ->
          require
            ((not (bit ctx Nf_vmcb.Vmcb.nested_ctl Nf_vmcb.Vmcb.Nested.np_enable))
            || ctx.caps.has_npt)
            "nested paging enabled without NPT support");
    };
    {
      id = "svm.ncr3_mbz";
      doc = "N_CR3 must be within the physical-address width and 4K-aligned";
      run =
        (fun ctx ->
          if not (bit ctx Nf_vmcb.Vmcb.nested_ctl Nf_vmcb.Vmcb.Nested.np_enable)
          then Ok ()
          else begin
            let v = rd ctx Nf_vmcb.Vmcb.n_cr3 in
            require
              (Svm_caps.addr_in_physaddr ctx.caps v
              && Nf_stdext.Bits.is_aligned v 12)
              "N_CR3 invalid (%Lx)" v
          end);
    };
    {
      id = "svm.vgif_supported";
      doc = "vGIF may only be enabled when supported";
      run =
        (fun ctx ->
          require
            ((not (bit ctx Nf_vmcb.Vmcb.vintr_ctl Nf_vmcb.Vmcb.Vintr.v_gif_enable))
            || ctx.caps.has_vgif)
            "vGIF enabled without hardware support");
    };
    {
      id = "svm.avic_supported";
      doc = "AVIC may only be enabled when supported";
      run =
        (fun ctx ->
          require
            ((not (bit ctx Nf_vmcb.Vmcb.vintr_ctl Nf_vmcb.Vmcb.Vintr.avic_enable))
            || ctx.caps.has_avic)
            "AVIC enabled without hardware support");
    };
    {
      id = "svm.event_inj";
      doc = "EVENTINJ type must be valid";
      run =
        (fun ctx ->
          let e = rd ctx Nf_vmcb.Vmcb.event_inj in
          if not (Nf_stdext.Bits.is_set e 31) then Ok ()
          else begin
            let typ = Int64.to_int (Nf_stdext.Bits.extract e ~lo:8 ~width:3) in
            match typ with
            | 0 | 2 | 3 | 4 -> Ok ()
            | t -> fail "EVENTINJ type %d reserved" t
          end);
    };
    {
      id = "svm.rflags_reserved";
      doc = "RFLAGS reserved-1 bit must be set";
      run =
        (fun ctx ->
          require
            (bit ctx Nf_vmcb.Vmcb.rflags Nf_x86.Rflags.reserved_one)
            "RFLAGS bit 1 clear");
    };
  ]

let ids = List.map (fun c -> c.id) all

let by_id =
  let h = Hashtbl.create 37 in
  List.iter (fun c -> Hashtbl.replace h c.id c) all;
  fun id ->
    match Hashtbl.find_opt h id with
    | Some c -> c
    | None -> invalid_arg (Printf.sprintf "unknown SVM check %S" id)

let run_all ?(skip = fun _ -> false) ctx =
  let rec go = function
    | [] -> Ok ()
    | c :: rest ->
        if skip c.id then go rest
        else begin
          match c.run ctx with Ok () -> go rest | Error msg -> Error (c, msg)
        end
  in
  go all
