(** vCPU feature configuration: the bit array the vCPU configurator
    mutates (§3.5/§4.4).  Intel flags map to kvm-intel.ko module
    parameters / QEMU CPU flags, AMD flags to kvm-amd.ko parameters. *)

type t = {
  nested : bool; (** expose VMX/SVM to the guest at all *)
  (* Intel VT-x *)
  ept : bool;
  unrestricted_guest : bool; (** requires ept *)
  vpid : bool;
  vmcs_shadowing : bool;
  apicv : bool;
  posted_interrupts : bool; (** requires apicv *)
  preemption_timer : bool;
  pml : bool; (** requires ept *)
  vmfunc : bool; (** requires ept *)
  ept_ad : bool; (** requires ept *)
  tsc_scaling : bool;
  xsaves : bool;
  (* AMD-V *)
  npt : bool;
  nrips : bool;
  vgif : bool;
  avic : bool;
  vls : bool;
  pause_filter : bool;
}

(** Everything enabled except AVIC (KVM's default). *)
val default : t

(** Resolve dependencies the way KVM's module-parameter handling does:
    disabling a prerequisite silently disables its dependents. *)
val normalize : t -> t

(** Number of flags in the configurator's bit array. *)
val flag_count : int

val nth_flag : t -> int -> bool
val with_nth_flag : t -> int -> bool -> t
val flag_name : int -> string

val pp : Format.formatter -> t -> unit
