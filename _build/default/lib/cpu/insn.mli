(** Guest instructions the execution harness can run in L2 (or L1) — the
    exit-triggering instruction classes of Table 1, plus the asynchronous
    pseudo-events of the §6.3 extension. *)

type t =
  | Cpuid of int (** leaf *)
  | Hlt
  | Pause
  | Mwait
  | Monitor
  | Invd
  | Wbinvd
  | Invlpg of int64
  | Rdtsc
  | Rdtscp
  | Rdpmc
  | Rdrand
  | Rdseed
  | Xsetbv of int64
  | Vmcall
  | Mov_to_cr of int * int64 (** CR number, value *)
  | Mov_from_cr of int
  | Mov_dr of int
  | Io_in of int (** port *)
  | Io_out of int * int (** port, value *)
  | Rdmsr of int
  | Wrmsr of int * int64
  | Vmx_in_guest of string
      (** any VMX/SVM instruction executed inside L2 *)
  | Soft_int of int (** INT n *)
  | Ud2
  | Nop
  | Ext_interrupt of int
      (** asynchronous external interrupt (vector), injected by the
          harness on a deterministic schedule *)
  | Nmi_event

val name : t -> string
