(** Non-root execution model for AMD-V: decide which #VMEXIT (if any) an
    instruction executed under a VMCB's intercept configuration causes. *)

open Nf_vmcb

type exit = { code : int64; info1 : int64; info2 : int64 }

type verdict = No_exit | Exit of exit

let exit ?(info1 = 0L) ?(info2 = 0L) code = Exit { code; info1; info2 }

let vec3 vmcb n = Vmcb.read_bit vmcb Vmcb.intercept_vec3 n
let vec4 vmcb n = Vmcb.read_bit vmcb Vmcb.intercept_vec4 n

let bitmap_bit addr index =
  let r = Nf_stdext.Rng.of_int64 (Int64.add addr (Int64.of_int (index * 2654435761))) in
  Nf_stdext.Rng.bool r

let io_intercepted vmcb port =
  vec3 vmcb Vmcb.Vec3.ioio_prot
  && bitmap_bit (Vmcb.read vmcb Vmcb.iopm_base_pa) port

let msr_intercepted vmcb ~write msr =
  vec3 vmcb Vmcb.Vec3.msr_prot
  &&
  let in_range =
    (msr >= 0 && msr < 0x2000)
    || (msr >= 0xC0000000 && msr < 0xC0002000)
    || (msr >= 0xC0010000 && msr < 0xC0012000)
  in
  (not in_range)
  || bitmap_bit (Vmcb.read vmcb Vmcb.msrpm_base_pa) ((msr * 2) + if write then 1 else 0)

let exception_intercepted vmcb vector =
  vector < 32 && Vmcb.read_bit vmcb Vmcb.intercept_exceptions vector

let decide (vmcb : Vmcb.t) (insn : Insn.t) : verdict =
  match insn with
  | Insn.Nop -> No_exit
  | Cpuid leaf ->
      if vec3 vmcb Vmcb.Vec3.cpuid then exit ~info1:(Int64.of_int leaf) Vmcb.Exit.cpuid
      else No_exit
  | Hlt -> if vec3 vmcb Vmcb.Vec3.hlt then exit Vmcb.Exit.hlt else No_exit
  | Pause -> if vec3 vmcb Vmcb.Vec3.pause then exit Vmcb.Exit.pause else No_exit
  | Mwait -> if vec4 vmcb Vmcb.Vec4.mwait then exit Vmcb.Exit.mwait else No_exit
  | Monitor ->
      if vec4 vmcb Vmcb.Vec4.monitor then exit Vmcb.Exit.monitor else No_exit
  | Invd -> if vec3 vmcb Vmcb.Vec3.invd then exit (Int64.of_int 0x76) else No_exit
  | Wbinvd -> if vec4 vmcb Vmcb.Vec4.wbinvd then exit Vmcb.Exit.wbinvd else No_exit
  | Invlpg _ -> if vec3 vmcb Vmcb.Vec3.invlpg then exit Vmcb.Exit.invlpg else No_exit
  | Rdtsc -> if vec3 vmcb Vmcb.Vec3.rdtsc then exit Vmcb.Exit.rdtsc else No_exit
  | Rdtscp -> if vec4 vmcb Vmcb.Vec4.rdtscp then exit Vmcb.Exit.rdtscp else No_exit
  | Rdpmc -> if vec3 vmcb Vmcb.Vec3.rdpmc then exit Vmcb.Exit.rdpmc else No_exit
  | Rdrand | Rdseed -> No_exit (* no SVM intercept for these *)
  | Xsetbv _ -> if vec4 vmcb Vmcb.Vec4.xsetbv then exit Vmcb.Exit.xsetbv else No_exit
  | Vmcall -> if vec4 vmcb Vmcb.Vec4.vmmcall then exit Vmcb.Exit.vmmcall else No_exit
  | Mov_to_cr (0, _) ->
      if Vmcb.read_bit vmcb Vmcb.intercept_cr_write 0 then exit Vmcb.Exit.cr0_write
      else No_exit
  | Mov_to_cr (3, _) ->
      if Vmcb.read_bit vmcb Vmcb.intercept_cr_write 3 then exit Vmcb.Exit.cr3_write
      else No_exit
  | Mov_to_cr (4, _) ->
      if Vmcb.read_bit vmcb Vmcb.intercept_cr_write 4 then exit Vmcb.Exit.cr4_write
      else No_exit
  | Mov_to_cr (n, _) ->
      if n < 16 && Vmcb.read_bit vmcb Vmcb.intercept_cr_write n then
        exit (Int64.of_int (0x10 + n))
      else No_exit
  | Mov_from_cr n ->
      if n < 16 && Vmcb.read_bit vmcb Vmcb.intercept_cr_read n then
        exit (Int64.of_int n)
      else No_exit
  | Mov_dr n ->
      if n < 16 && Vmcb.read_bit vmcb Vmcb.intercept_dr_write n then
        exit (Int64.of_int (0x30 + n))
      else No_exit
  | Io_in port ->
      if io_intercepted vmcb port then
        exit ~info1:(Int64.of_int ((port lsl 16) lor 1)) Vmcb.Exit.ioio
      else No_exit
  | Io_out (port, _) ->
      if io_intercepted vmcb port then
        exit ~info1:(Int64.of_int (port lsl 16)) Vmcb.Exit.ioio
      else No_exit
  | Rdmsr msr ->
      if msr_intercepted vmcb ~write:false msr then
        exit ~info1:0L ~info2:(Int64.of_int msr) Vmcb.Exit.msr
      else No_exit
  | Wrmsr (msr, _) ->
      if msr_intercepted vmcb ~write:true msr then
        exit ~info1:1L ~info2:(Int64.of_int msr) Vmcb.Exit.msr
      else No_exit
  | Vmx_in_guest kind -> begin
      (* SVM instructions executed inside the guest. *)
      match kind with
      | "vmrun" -> if vec4 vmcb Vmcb.Vec4.vmrun then exit Vmcb.Exit.vmrun else No_exit
      | "vmload" ->
          if vec4 vmcb Vmcb.Vec4.vmload then exit Vmcb.Exit.vmload else No_exit
      | "vmsave" ->
          if vec4 vmcb Vmcb.Vec4.vmsave then exit Vmcb.Exit.vmsave else No_exit
      | "stgi" -> if vec4 vmcb Vmcb.Vec4.stgi then exit Vmcb.Exit.stgi else No_exit
      | "clgi" -> if vec4 vmcb Vmcb.Vec4.clgi then exit Vmcb.Exit.clgi else No_exit
      | "invlpga" ->
          if vec3 vmcb Vmcb.Vec3.invlpga then exit Vmcb.Exit.invlpga else No_exit
      | "skinit" ->
          if vec4 vmcb Vmcb.Vec4.skinit then exit Vmcb.Exit.skinit else No_exit
      | _ -> No_exit
    end
  | Soft_int vector ->
      if vec3 vmcb Vmcb.Vec3.intn then
        exit ~info1:(Int64.of_int vector) (Int64.of_int 0x75)
      else No_exit
  | Ud2 ->
      if exception_intercepted vmcb Nf_x86.Exn.ud then
        exit (Int64.add Vmcb.Exit.exception_base (Int64.of_int Nf_x86.Exn.ud))
      else No_exit
  | Ext_interrupt vector ->
      if vec3 vmcb Vmcb.Vec3.intr then
        exit ~info1:(Int64.of_int vector) Vmcb.Exit.intr
      else No_exit
  | Nmi_event -> if vec3 vmcb Vmcb.Vec3.nmi then exit Vmcb.Exit.nmi else No_exit
