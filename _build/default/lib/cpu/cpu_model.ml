(** Physical CPU models used in the paper's evaluation. *)

type vendor = Intel | Amd

let vendor_name = function Intel -> "Intel" | Amd -> "AMD"

type t = {
  vendor : vendor;
  model_name : string;
  vmx : Vmx_caps.t option;
  svm : Svm_caps.t option;
}

let intel_i9_12900k =
  {
    vendor = Intel;
    model_name = "Intel Core i9-12900K";
    vmx = Some Vmx_caps.alder_lake;
    svm = None;
  }

let amd_threadripper_5995wx =
  {
    vendor = Amd;
    model_name = "AMD Ryzen Threadripper PRO 5995WX";
    vmx = None;
    svm = Some Svm_caps.zen3;
  }

let amd_ryzen_5950x =
  {
    vendor = Amd;
    model_name = "AMD Ryzen 9 5950X";
    vmx = None;
    svm = Some Svm_caps.zen3;
  }

let vmx_caps_exn t =
  match t.vmx with
  | Some c -> c
  | None -> invalid_arg (t.model_name ^ " has no VT-x")

let svm_caps_exn t =
  match t.svm with
  | Some c -> c
  | None -> invalid_arg (t.model_name ^ " has no AMD-V")
