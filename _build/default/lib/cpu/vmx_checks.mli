(** VM-entry consistency checks (Intel SDM Vol. 3C §26.2–26.3).

    Each check has a stable identifier.  Three consumers share the table:
    the physical-CPU oracle (which skips its hardware quirks), the
    Bochs-derived validator (which rounds toward these rules), and the
    simulated hypervisors (which replicate a subset — the missing
    identifiers are exactly the planted vulnerabilities). *)

type group = Ctl | Host | Guest

val group_name : group -> string

type ctx = {
  caps : Vmx_caps.t;
  vmcs : Nf_vmcs.Vmcs.t;
  entry_msr_load : (int * int64) array;
      (** the area's address/count fields are checked here; its contents
          are processed during entry by [Vmx_cpu] *)
}

type check = {
  id : string;
  group : group;
  doc : string;
  run : ctx -> (unit, string) result;
}

(** All checks in architectural evaluation order: controls, then host
    state, then guest state. *)
val all : check list

(** @raise Invalid_argument on an unknown identifier. *)
val by_id : string -> check

val ids : string list

(** Run every check of [group] in table order; first failure wins, as on
    hardware.  [skip] suppresses individual checks (hardware quirks, or a
    hypervisor's missing replication). *)
val run_group :
  ?skip:(string -> bool) -> group -> ctx -> (unit, check * string) result

val run_all : ?skip:(string -> bool) -> ctx -> (unit, check * string) result
