(** Physical-CPU oracle for Intel VT-x: the consistency-checking part of
    VMLAUNCH/VMRESUME.

    Control and host-state violations VMfail with instruction errors 7/8;
    guest-state violations cause an early VM exit with basic reason 33
    (34 for MSR-load failures) — the observable behaviour the paper's
    validator uses as ground truth.

    Hardware deviates from the written specification in places: the
    documented rule "CR4.PAE must be set when IA-32e mode is enabled" is
    not enforced (the CPU silently assumes PAE), which is what makes
    CVE-2023-30456 possible when a hypervisor replicates the manual
    instead of the silicon. *)

(** Check identifiers the physical CPU does not enforce even though the
    manual states them. *)
val hardware_skips : string list

(** VM-instruction error numbers (SDM Vol. 3C §30.4). *)
module Insn_error : sig
  val vmcall_in_root : int
  val vmclear_invalid_addr : int
  val vmclear_vmxon_ptr : int
  val vmlaunch_not_clear : int
  val vmresume_not_launched : int
  val vmresume_after_vmxoff : int
  val entry_invalid_control : int
  val entry_invalid_host : int
  val vmptrld_invalid_addr : int
  val vmptrld_vmxon_ptr : int
  val vmptrld_wrong_revision : int
  val vmread_vmwrite_unsupported : int
  val vmwrite_readonly : int
  val vmxon_in_root : int
  val invept_invalid_operand : int
  val name : int -> string
end

type outcome =
  | Entered of { adjustments : (Nf_vmcs.Field.t * int64 * int64) list }
      (** entry succeeded; (field, before, after) the CPU silently
          corrected *)
  | Vmfail_control of { check : Vmx_checks.check; msg : string }
  | Vmfail_host of { check : Vmx_checks.check; msg : string }
  | Entry_fail_guest of { check : Vmx_checks.check; msg : string }
  | Entry_fail_msr_load of { index : int; msr : int; msg : string }

val outcome_name : outcome -> string
val pp_outcome : Format.formatter -> outcome -> unit

(** Validate one VM-entry MSR-load entry (SDM §26.4). *)
val check_msr_load_entry : int * int64 -> (unit, string) result

(** Silent corrections the CPU applies on a successful entry; returns the
    adjusted copy and the change list. *)
val silent_adjust :
  Nf_vmcs.Vmcs.t -> Nf_vmcs.Vmcs.t * (Nf_vmcs.Field.t * int64 * int64) list

(** Attempt a VM entry. *)
val enter :
  caps:Vmx_caps.t -> ?msr_load:(int * int64) array -> Nf_vmcs.Vmcs.t -> outcome

(** Like {!enter}, with silent adjustments written back — what a guest
    observes via VMREAD after running. *)
val enter_and_writeback :
  caps:Vmx_caps.t -> ?msr_load:(int * int64) array -> Nf_vmcs.Vmcs.t -> outcome
