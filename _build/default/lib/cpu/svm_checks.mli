(** VMRUN canonicalization and consistency checks (AMD APM Vol. 2
    §15.5.1).  Violations cause VMRUN to fail with VMEXIT_INVALID.

    One deliberate absence: the APM permits EFER.LME=1 with CR0.PG=0 and
    does not define VMRUN's behaviour for it — the architectural
    ambiguity behind the Xen nested-SVM bug — so there is no check for
    that state here. *)

type ctx = { caps : Svm_caps.t; vmcb : Nf_vmcb.Vmcb.t }

type check = { id : string; doc : string; run : ctx -> (unit, string) result }

val all : check list
val ids : string list

(** @raise Invalid_argument on an unknown identifier. *)
val by_id : string -> check

val run_all : ?skip:(string -> bool) -> ctx -> (unit, check * string) result
