(** Physical-CPU oracle for AMD-V: VMRUN consistency checking. *)

type outcome =
  | Entered
  | Vmexit_invalid of { check : Svm_checks.check; msg : string }
      (** VMRUN failed its consistency checks: EXITCODE = VMEXIT_INVALID *)

let outcome_name = function
  | Entered -> "ENTERED"
  | Vmexit_invalid _ -> "VMEXIT_INVALID"

let pp_outcome ppf = function
  | Entered -> Format.fprintf ppf "entered"
  | Vmexit_invalid { check; msg } ->
      Format.fprintf ppf "VMEXIT_INVALID %s: %s" check.Svm_checks.id msg

(** Hardware accepts states the manual is silent about; nothing in
    [Svm_checks.all] models the EFER.LME && !CR0.PG ambiguity, so there is
    no skip list — kept for interface symmetry with the Intel oracle. *)
let hardware_skips : string list = []

let vmrun ~(caps : Svm_caps.t) (vmcb : Nf_vmcb.Vmcb.t) : outcome =
  let ctx = { Svm_checks.caps; vmcb } in
  let skip id = List.mem id hardware_skips in
  match Svm_checks.run_all ~skip ctx with
  | Ok () -> Entered
  | Error (check, msg) -> Vmexit_invalid { check; msg }

(** Is the VMCB describing a guest in the "legacy mode with long mode
    armed" corner (EFER.LME set, CR0.PG clear)?  Hardware permits it; how a
    nested hypervisor mirrors it into VMCB02 is where Xen goes wrong. *)
let lme_without_paging vmcb =
  Nf_stdext.Bits.is_set (Nf_vmcb.Vmcb.read vmcb Nf_vmcb.Vmcb.efer) Nf_x86.Efer.lme
  && not (Nf_stdext.Bits.is_set (Nf_vmcb.Vmcb.read vmcb Nf_vmcb.Vmcb.cr0) Nf_x86.Cr0.pg)
