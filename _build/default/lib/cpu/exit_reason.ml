(** Intel VT-x basic exit reasons (SDM Vol. 3D App. C). *)

let exception_nmi = 0
let external_interrupt = 1
let triple_fault = 2
let init_signal = 3
let sipi = 4
let interrupt_window = 7
let nmi_window = 8
let task_switch = 9
let cpuid = 10
let getsec = 11
let hlt = 12
let invd = 13
let invlpg = 14
let rdpmc = 15
let rdtsc = 16
let rsm = 17
let vmcall = 18
let vmclear = 19
let vmlaunch = 20
let vmptrld = 21
let vmptrst = 22
let vmread = 23
let vmresume = 24
let vmwrite = 25
let vmxoff = 26
let vmxon = 27
let cr_access = 28
let dr_access = 29
let io_instruction = 30
let msr_read = 31
let msr_write = 32
let invalid_guest_state = 33
let msr_load_fail = 34
let mwait = 36
let monitor_trap_flag = 37
let monitor = 39
let pause = 40
let machine_check = 41
let tpr_below_threshold = 43
let apic_access = 44
let virtualized_eoi = 45
let gdtr_idtr_access = 46
let ldtr_tr_access = 47
let ept_violation = 48
let ept_misconfig = 49
let invept = 50
let rdtscp = 51
let preemption_timer = 52
let invvpid = 53
let wbinvd = 54
let xsetbv = 55
let apic_write = 56
let rdrand = 57
let invpcid = 58
let vmfunc = 59
let encls = 60
let rdseed = 61
let pml_full = 62
let xsaves = 63
let xrstors = 64

(** Bit 31 of the exit-reason field flags a VM-entry failure. *)
let entry_failure_flag = 0x8000_0000L

let with_entry_failure r = Int64.logor (Int64.of_int r) entry_failure_flag

let name = function
  | 0 -> "EXCEPTION_NMI" | 1 -> "EXTERNAL_INTERRUPT" | 2 -> "TRIPLE_FAULT"
  | 3 -> "INIT" | 4 -> "SIPI" | 7 -> "INTERRUPT_WINDOW" | 8 -> "NMI_WINDOW"
  | 9 -> "TASK_SWITCH" | 10 -> "CPUID" | 11 -> "GETSEC" | 12 -> "HLT"
  | 13 -> "INVD" | 14 -> "INVLPG" | 15 -> "RDPMC" | 16 -> "RDTSC"
  | 17 -> "RSM" | 18 -> "VMCALL" | 19 -> "VMCLEAR" | 20 -> "VMLAUNCH"
  | 21 -> "VMPTRLD" | 22 -> "VMPTRST" | 23 -> "VMREAD" | 24 -> "VMRESUME"
  | 25 -> "VMWRITE" | 26 -> "VMXOFF" | 27 -> "VMXON" | 28 -> "CR_ACCESS"
  | 29 -> "DR_ACCESS" | 30 -> "IO_INSTRUCTION" | 31 -> "MSR_READ"
  | 32 -> "MSR_WRITE" | 33 -> "INVALID_GUEST_STATE" | 34 -> "MSR_LOAD_FAIL"
  | 36 -> "MWAIT" | 37 -> "MONITOR_TRAP_FLAG" | 39 -> "MONITOR"
  | 40 -> "PAUSE" | 41 -> "MACHINE_CHECK" | 43 -> "TPR_BELOW_THRESHOLD"
  | 44 -> "APIC_ACCESS" | 45 -> "VIRTUALIZED_EOI" | 46 -> "GDTR_IDTR"
  | 47 -> "LDTR_TR" | 48 -> "EPT_VIOLATION" | 49 -> "EPT_MISCONFIG"
  | 50 -> "INVEPT" | 51 -> "RDTSCP" | 52 -> "PREEMPTION_TIMER"
  | 53 -> "INVVPID" | 54 -> "WBINVD" | 55 -> "XSETBV" | 56 -> "APIC_WRITE"
  | 57 -> "RDRAND" | 58 -> "INVPCID" | 59 -> "VMFUNC" | 60 -> "ENCLS"
  | 61 -> "RDSEED" | 62 -> "PML_FULL" | 63 -> "XSAVES" | 64 -> "XRSTORS"
  | n -> Printf.sprintf "EXIT(%d)" n
