(** Physical-CPU oracle for Intel VT-x.

    [enter] performs the consistency-checking part of VMLAUNCH/VMRESUME on
    a VMCS: control and host-state violations VMfail with instruction
    errors 7/8; guest-state violations cause an early VM exit with basic
    reason 33 (and 34 for MSR-load failures), exactly the observable
    behaviour the paper's validator uses as ground truth.

    Hardware deviates from the written specification in places — the
    quirks below.  The documented rule "CR4.PAE must be set when IA-32e
    mode is enabled" is *not* enforced: the CPU silently assumes PAE, the
    behaviour that makes CVE-2023-30456 possible when a hypervisor
    replicates the manual instead of the silicon. *)

open Nf_vmcs

(** Check identifiers the physical CPU does not enforce even though the
    manual states them.  The validator discovers these by comparing its
    model against [enter]. *)
let hardware_skips = [ "guest.ia32e_pae" ]

(** VM-instruction error numbers (SDM Vol. 3C §30.4). *)
module Insn_error = struct
  let vmcall_in_root = 1
  let vmclear_invalid_addr = 2
  let vmclear_vmxon_ptr = 3
  let vmlaunch_not_clear = 4
  let vmresume_not_launched = 5
  let vmresume_after_vmxoff = 6
  let entry_invalid_control = 7
  let entry_invalid_host = 8
  let vmptrld_invalid_addr = 9
  let vmptrld_vmxon_ptr = 10
  let vmptrld_wrong_revision = 11
  let vmread_vmwrite_unsupported = 12
  let vmwrite_readonly = 13
  let vmxon_in_root = 15
  let invept_invalid_operand = 28

  let name = function
    | 1 -> "VMCALL_IN_ROOT" | 2 -> "VMCLEAR_INVALID_ADDR"
    | 3 -> "VMCLEAR_VMXON_PTR" | 4 -> "VMLAUNCH_NOT_CLEAR"
    | 5 -> "VMRESUME_NOT_LAUNCHED" | 6 -> "VMRESUME_AFTER_VMXOFF"
    | 7 -> "ENTRY_INVALID_CONTROL" | 8 -> "ENTRY_INVALID_HOST"
    | 9 -> "VMPTRLD_INVALID_ADDR" | 10 -> "VMPTRLD_VMXON_PTR"
    | 11 -> "VMPTRLD_WRONG_REVISION" | 12 -> "VMREAD_VMWRITE_UNSUPPORTED"
    | 13 -> "VMWRITE_READONLY" | 15 -> "VMXON_IN_ROOT"
    | 28 -> "INVEPT_INVALID_OPERAND"
    | n -> Printf.sprintf "VM_INSN_ERROR(%d)" n
end

type outcome =
  | Entered of { adjustments : (Field.t * int64 * int64) list }
      (** entry succeeded; list of (field, before, after) the CPU silently
          corrected *)
  | Vmfail_control of { check : Vmx_checks.check; msg : string }
      (** instruction error 7 *)
  | Vmfail_host of { check : Vmx_checks.check; msg : string }
      (** instruction error 8 *)
  | Entry_fail_guest of { check : Vmx_checks.check; msg : string }
      (** early exit, basic reason 33 | bit 31 *)
  | Entry_fail_msr_load of { index : int; msr : int; msg : string }
      (** early exit, basic reason 34 | bit 31; qualification = index+1 *)

let outcome_name = function
  | Entered _ -> "ENTERED"
  | Vmfail_control _ -> "VMFAIL_INVALID_CONTROL"
  | Vmfail_host _ -> "VMFAIL_INVALID_HOST"
  | Entry_fail_guest _ -> "ENTRY_FAIL_GUEST_STATE"
  | Entry_fail_msr_load _ -> "ENTRY_FAIL_MSR_LOAD"

let pp_outcome ppf = function
  | Entered { adjustments = [] } -> Format.fprintf ppf "entered"
  | Entered { adjustments } ->
      Format.fprintf ppf "entered (%d silent fixes)" (List.length adjustments)
  | Vmfail_control { check; msg } ->
      Format.fprintf ppf "VMfail(7) %s: %s" check.Vmx_checks.id msg
  | Vmfail_host { check; msg } ->
      Format.fprintf ppf "VMfail(8) %s: %s" check.Vmx_checks.id msg
  | Entry_fail_guest { check; msg } ->
      Format.fprintf ppf "entry-fail(33) %s: %s" check.Vmx_checks.id msg
  | Entry_fail_msr_load { index; msr; msg } ->
      Format.fprintf ppf "entry-fail(34) MSR-load[%d]=%s: %s" index
        (Nf_x86.Msr.name msr) msg

(** Validate one VM-entry MSR-load entry, as the CPU does after the guest
    state checks pass (SDM §26.4). *)
let check_msr_load_entry (msr, value) =
  if msr = Nf_x86.Msr.ia32_fs_base || msr = Nf_x86.Msr.ia32_gs_base then
    Error "FS_BASE/GS_BASE cannot be loaded from the MSR-load area"
  else if msr land 0xFFFFF000 = 0x800 then
    Error "x2APIC MSRs cannot be loaded from the MSR-load area"
  else if
    List.mem msr Nf_x86.Msr.must_be_canonical
    && not (Nf_stdext.Bits.is_canonical value)
  then Error (Printf.sprintf "non-canonical value %Lx" value)
  else if msr = Nf_x86.Msr.ia32_efer
          && Int64.logand value (Int64.lognot Nf_x86.Efer.defined_mask) <> 0L
  then Error "EFER reserved bits set"
  else Ok ()

(** Silent corrections the CPU applies on a *successful* entry.  Returns
    the adjusted VMCS together with the change list; the original is not
    modified. *)
let silent_adjust vmcs =
  let adjusted = Vmcs.copy vmcs in
  let changes = ref [] in
  let fix f v =
    let old = Vmcs.read adjusted f in
    if old <> v then begin
      Vmcs.write adjusted f v;
      changes := (f, old, v) :: !changes
    end
  in
  (* Event injection into a halted guest wakes it: activity rounds to
     ACTIVE. *)
  if
    Nf_x86.Exn.Intr_info.valid (Vmcs.read vmcs Field.entry_intr_info)
    && Vmcs.read vmcs Field.guest_activity_state = Field.Activity.hlt
  then fix Field.guest_activity_state Field.Activity.active;
  (* The CPU materialises the reserved-1 bit of RFLAGS if the rest of the
     register passed the checks with it set; reading it back always shows
     bit 1. *)
  let rf = Vmcs.read vmcs Field.guest_rflags in
  if not (Nf_stdext.Bits.is_set rf 1) then
    fix Field.guest_rflags (Nf_stdext.Bits.set rf 1);
  (adjusted, List.rev !changes)

let enter ~(caps : Vmx_caps.t) ?(msr_load = [||]) (vmcs : Vmcs.t) : outcome =
  let ctx = { Vmx_checks.caps; vmcs; entry_msr_load = msr_load } in
  let skip id = List.mem id hardware_skips in
  match Vmx_checks.run_group ~skip Ctl ctx with
  | Error (check, msg) -> Vmfail_control { check; msg }
  | Ok () -> (
      match Vmx_checks.run_group ~skip Host ctx with
      | Error (check, msg) -> Vmfail_host { check; msg }
      | Ok () -> (
          match Vmx_checks.run_group ~skip Guest ctx with
          | Error (check, msg) -> Entry_fail_guest { check; msg }
          | Ok () ->
              (* MSR-load processing. *)
              let fail = ref None in
              Array.iteri
                (fun i entry ->
                  if !fail = None then begin
                    match check_msr_load_entry entry with
                    | Ok () -> ()
                    | Error msg -> fail := Some (i, fst entry, msg)
                  end)
                msr_load;
              (match !fail with
              | Some (index, msr, msg) -> Entry_fail_msr_load { index; msr; msg }
              | None ->
                  let _, adjustments = silent_adjust vmcs in
                  Entered { adjustments })))

(** [enter] with the adjusted VMCS written back, mirroring what a guest
    observes via VMREAD after running: the paper's validator compares this
    against its own prediction. *)
let enter_and_writeback ~caps ?msr_load vmcs =
  match enter ~caps ?msr_load vmcs with
  | Entered { adjustments } ->
      List.iter (fun (f, _old, v) -> Vmcs.write vmcs f v) adjustments;
      Entered { adjustments }
  | other -> other
