(** The two Bochs validator bugs found during NecoFuzz development.

    While building the VM state validator the authors discovered and
    patched two bugs in Bochs's VM-entry checks for guest segment
    registers (Bochs PR #51).  We model both as "legacy" check variants:
    enabling [legacy_mode] reproduces the pre-patch behaviour, and the
    hardware-oracle self-check exposes the divergence — exactly how the
    paper says the bugs were noticed.

    Bug 1: the pre-patch check validated the SS RPL/CS RPL match even for
    an *unusable* SS, rejecting states hardware accepts (too strict).

    Bug 2: the pre-patch check skipped the granularity/limit consistency
    rule for expand-down data segments, accepting states hardware rejects
    (too lax). *)

open Nf_vmcs

type variant = Legacy | Patched

(* Bug 1 (too strict): pre-patch SS check. *)
let check_ss_rpl variant vmcs =
  let open Nf_x86.Seg in
  let ar = Vmcs.read vmcs (Field.guest_ar SS) in
  let consider =
    match variant with
    | Legacy -> true (* checked even when SS is unusable *)
    | Patched -> not (Ar.is_unusable ar)
  in
  if not consider then Ok ()
  else begin
    let ss_rpl = Int64.logand (Vmcs.read vmcs (Field.guest_selector SS)) 3L in
    let cs_rpl = Int64.logand (Vmcs.read vmcs (Field.guest_selector CS)) 3L in
    if ss_rpl = cs_rpl then Ok ()
    else Error "guest SS RPL != CS RPL"
  end

(* Bug 2 (too lax): pre-patch granularity check. *)
let check_data_limit variant vmcs r =
  let open Nf_x86.Seg in
  let ar = Vmcs.read vmcs (Field.guest_ar r) in
  let limit = Vmcs.read vmcs (Field.guest_limit r) in
  if Ar.is_unusable ar then Ok ()
  else begin
    let expand_down = Ar.is_code_data ar && Ar.get_type ar land 0xC = 0x4 in
    let skip =
      match variant with
      | Legacy -> expand_down (* pre-patch: expand-down skipped the rule *)
      | Patched -> false
    in
    if skip then Ok ()
    else if Ar.is_granular ar then
      if Int64.logand limit 0xFFFL = 0xFFFL then Ok ()
      else Error "granular segment with limit[11:0] != 0xFFF"
    else if Int64.logand limit 0xFFF0_0000L = 0L then Ok ()
    else Error "byte-granular segment with limit[31:20] != 0"
  end

(** Construct a VMCS demonstrating bug 1: valid state with an unusable SS
    whose RPL disagrees with CS — hardware accepts, legacy model rejects. *)
let witness_bug1 caps =
  let v = Golden.vmcs caps in
  Vmcs.write v (Field.guest_ar Nf_x86.Seg.SS) Nf_x86.Seg.ldtr_unusable_ar;
  Vmcs.write v (Field.guest_selector Nf_x86.Seg.SS) 0x13L;
  (* RPL 3 *)
  v

(** Construct a VMCS demonstrating bug 2: expand-down data segment with an
    inconsistent granular limit — hardware rejects, legacy model accepts. *)
let witness_bug2 caps =
  let v = Golden.vmcs caps in
  let ar =
    Nf_x86.Seg.Ar.make ~typ:Nf_x86.Seg.type_data_rw_expand_down ~gran:true ()
  in
  Vmcs.write v (Field.guest_ar Nf_x86.Seg.DS) ar;
  Vmcs.write v (Field.guest_limit Nf_x86.Seg.DS) 0x1000L;
  (* granular but limit[11:0] = 0 *)
  v
