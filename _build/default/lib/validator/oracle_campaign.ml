(** Validator differential testing against the hardware oracle (§3.4).

    "The validator sets the generated VMCS on the actual CPU, attempts a
    VM entry, and compares the resulting VMCS state with the expected
    one" — this module runs that loop in bulk, which is how the paper's
    authors both corrected their own model at runtime and found the two
    Bochs bugs.  Disagreements come in two flavours:

    - [Model_too_strict]: the model rejects a state silicon accepts — a
      hardware quirk; the validator learns it and moves on;
    - [Model_too_lax]: the model accepts a state silicon rejects — a
      genuine validator bug, reported for fixing. *)

type report = {
  samples : int;
  agreements : int;
  quirks_learned : string list; (* check ids relaxed at runtime *)
  model_bugs : (string * Nf_vmcs.Vmcs.t) list; (* too-lax check id + witness *)
}

(** Exercise the model on [samples] boundary states (the same
    round-then-flip pipeline used during fuzzing). *)
let run ?(samples = 10_000) ~(caps : Nf_cpu.Vmx_caps.t) ~seed () : report =
  let rng = Nf_stdext.Rng.create seed in
  let validator = Validator.create caps in
  let agreements = ref 0 in
  let model_bugs = ref [] in
  for _ = 1 to samples do
    let vmcs = Distribution.random_vmcs rng in
    Validator.round validator vmcs;
    ignore (Mutation.mutate (Mutation.of_rng rng) vmcs);
    match Validator.self_check validator vmcs with
    | Validator.Agree -> incr agreements
    | Model_too_strict _ -> () (* learned inside self_check *)
    | Model_too_lax id -> model_bugs := (id, Nf_vmcs.Vmcs.copy vmcs) :: !model_bugs
  done;
  {
    samples;
    agreements = !agreements;
    quirks_learned = validator.Validator.learned_skips;
    model_bugs = List.rev !model_bugs;
  }

(** Same loop with a deliberately buggy model: inject the legacy
    (pre-patch) Bochs segment checks and show the oracle exposing them —
    the regression scenario of the paper's Bochs PR #51. *)
let run_with_legacy_bochs_checks ~(caps : Nf_cpu.Vmx_caps.t) () :
    (string * bool) list =
  (* For each legacy bug, does the oracle flag the witness state? *)
  let bug1 =
    let w = Bochs_bugs.witness_bug1 caps in
    let model_rejects =
      Bochs_bugs.check_ss_rpl Bochs_bugs.Legacy w = Ok () |> not
    in
    let hw_accepts =
      match Nf_cpu.Vmx_cpu.enter ~caps w with
      | Nf_cpu.Vmx_cpu.Entered _ -> true
      | _ -> false
    in
    ("bochs-bug-1 (SS RPL checked while unusable)", model_rejects && hw_accepts)
  in
  let bug2 =
    let w = Bochs_bugs.witness_bug2 caps in
    let model_accepts = Bochs_bugs.check_data_limit Bochs_bugs.Legacy w Nf_x86.Seg.DS = Ok () in
    let hw_rejects =
      match Nf_cpu.Vmx_cpu.enter ~caps w with
      | Nf_cpu.Vmx_cpu.Entered _ -> false
      | _ -> true
    in
    ("bochs-bug-2 (expand-down limit rule skipped)", model_accepts && hw_rejects)
  in
  [ bug1; bug2 ]

let pp ppf (r : report) =
  Format.fprintf ppf
    "oracle campaign: %d samples, %d agreements (%.2f%%), %d quirk(s) \
     learned, %d model bug(s)@."
    r.samples r.agreements
    (100.0 *. float_of_int r.agreements /. float_of_int (max 1 r.samples))
    (List.length r.quirks_learned)
    (List.length r.model_bugs);
  List.iter (fun id -> Format.fprintf ppf "  quirk: %s@." id) r.quirks_learned;
  List.iter
    (fun (id, _) -> Format.fprintf ppf "  MODEL BUG (too lax): %s@." id)
    r.model_bugs
