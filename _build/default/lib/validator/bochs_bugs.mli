(** The two Bochs validator bugs found during NecoFuzz development
    (Bochs PR #51), modelled as legacy/patched check variants so the
    hardware-oracle comparison can expose them — exactly how the paper
    says the bugs were noticed. *)

type variant = Legacy | Patched

(** Bug 1 (too strict): the pre-patch check validated the SS/CS RPL match
    even for an unusable SS, rejecting states hardware accepts. *)
val check_ss_rpl : variant -> Nf_vmcs.Vmcs.t -> (unit, string) result

(** Bug 2 (too lax): the pre-patch check skipped the granularity/limit
    consistency rule for expand-down data segments, accepting states
    hardware rejects. *)
val check_data_limit :
  variant -> Nf_vmcs.Vmcs.t -> Nf_x86.Seg.register -> (unit, string) result

(** A valid state with an unusable SS whose RPL disagrees with CS:
    hardware accepts it, the legacy model rejects it. *)
val witness_bug1 : Nf_cpu.Vmx_caps.t -> Nf_vmcs.Vmcs.t

(** An expand-down data segment with an inconsistent granular limit:
    hardware rejects it, the legacy model accepts it. *)
val witness_bug2 : Nf_cpu.Vmx_caps.t -> Nf_vmcs.Vmcs.t
