(** Golden VM states: the fully valid, default-initialized configurations
    a well-behaved hypervisor would program.

    The execution harness's initialization template starts from these,
    and the Fig. 5 experiment uses them as the "simple
    default-initialized values" reference point. *)

(** A canonical 64-bit guest VMCS that passes every VM-entry check of
    [Nf_cpu.Vmx_checks] under [caps]. *)
val vmcs : Nf_cpu.Vmx_caps.t -> Nf_vmcs.Vmcs.t

(** A golden VMCB: 64-bit guest under nested paging with the customary
    intercepts, passing every VMRUN consistency check. *)
val vmcb : Nf_cpu.Svm_caps.t -> Nf_vmcb.Vmcb.t
