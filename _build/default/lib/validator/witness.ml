(** Violation witnesses: for (nearly) every consistency check, a VM state
    that fails exactly that check, built from the golden state.

    Three consumers: the property-test suite (each witness must fail its
    own check and nothing earlier), the KVM-unit-tests baseline model
    (the real suite contains hand-written tests of exactly this shape),
    and documentation of what each check guards. *)

open Nf_vmcs

let bits = List.fold_left Nf_stdext.Bits.set 0L

type t = {
  check_id : string;
  build : Nf_cpu.Vmx_caps.t -> Vmcs.t;
}

let w vmcs f v = Vmcs.write vmcs f v

let modify caps f =
  let vmcs = Golden.vmcs caps in
  f vmcs;
  vmcs

let set_bit vmcs field n = Vmcs.set_bit vmcs field n true
let clear_bit vmcs field n = Vmcs.set_bit vmcs field n false

(* A golden variant running an unrestricted (EPT-backed) guest, used by
   witnesses that need the CR0 PE/PG relaxation. *)
let golden_unrestricted caps =
  let vmcs = Golden.vmcs caps in
  set_bit vmcs Field.proc_based_ctls2 Controls.Proc2.unrestricted_guest;
  vmcs

(* A golden variant running a legacy (non-IA-32e) PAE guest. *)
let golden_legacy caps =
  let vmcs = Golden.vmcs caps in
  clear_bit vmcs Field.entry_ctls Controls.Entry.ia32e_mode_guest;
  w vmcs Field.guest_ia32_efer 0L;
  List.iter
    (fun r ->
      let ar = Vmcs.read vmcs (Field.guest_ar r) in
      w vmcs (Field.guest_ar r) (Nf_stdext.Bits.clear ar Nf_x86.Seg.Ar.l))
    [ Nf_x86.Seg.CS ];
  w vmcs Field.guest_rip 0x10_0000L;
  vmcs

let vmx : t list =
  [
    { check_id = "ctl.pin_reserved";
      build = (fun caps -> modify caps (fun v -> set_bit v Field.pin_based_ctls 13)) };
    { check_id = "ctl.proc_reserved";
      build = (fun caps -> modify caps (fun v -> set_bit v Field.proc_based_ctls 0)) };
    { check_id = "ctl.proc2_reserved";
      build = (fun caps -> modify caps (fun v -> set_bit v Field.proc_based_ctls2 29)) };
    { check_id = "ctl.exit_reserved";
      build = (fun caps -> modify caps (fun v -> set_bit v Field.exit_ctls 30)) };
    { check_id = "ctl.entry_reserved";
      build = (fun caps -> modify caps (fun v -> set_bit v Field.entry_ctls 30)) };
    { check_id = "ctl.cr3_target_count";
      build = (fun caps -> modify caps (fun v -> w v Field.cr3_target_count 5L)) };
    { check_id = "ctl.io_bitmaps";
      build =
        (fun caps ->
          modify caps (fun v ->
              set_bit v Field.proc_based_ctls Controls.Proc.use_io_bitmaps;
              w v Field.io_bitmap_a 0x1001L)) };
    { check_id = "ctl.msr_bitmap";
      build = (fun caps -> modify caps (fun v -> w v Field.msr_bitmap 0x123L)) };
    { check_id = "ctl.tpr_shadow";
      build =
        (fun caps ->
          modify caps (fun v ->
              set_bit v Field.proc_based_ctls2 Controls.Proc2.virtualize_x2apic)) };
    { check_id = "ctl.x2apic_conflict";
      build =
        (fun caps ->
          modify caps (fun v ->
              set_bit v Field.proc_based_ctls Controls.Proc.use_tpr_shadow;
              w v Field.virtual_apic_page_addr 0x15000L;
              set_bit v Field.proc_based_ctls2 Controls.Proc2.virtualize_x2apic;
              set_bit v Field.proc_based_ctls2 Controls.Proc2.virtualize_apic_accesses;
              w v Field.apic_access_addr 0x16000L)) };
    { check_id = "ctl.nmi";
      build =
        (fun caps ->
          modify caps (fun v ->
              set_bit v Field.pin_based_ctls Controls.Pin.virtual_nmis)) };
    { check_id = "ctl.nmi_window";
      build =
        (fun caps ->
          modify caps (fun v ->
              set_bit v Field.proc_based_ctls Controls.Proc.nmi_window_exiting)) };
    { check_id = "ctl.posted_intr";
      build =
        (fun caps ->
          modify caps (fun v ->
              set_bit v Field.pin_based_ctls Controls.Pin.process_posted_interrupts)) };
    { check_id = "ctl.vid_requires_ext_intr";
      build =
        (fun caps ->
          modify caps (fun v ->
              set_bit v Field.proc_based_ctls Controls.Proc.use_tpr_shadow;
              w v Field.virtual_apic_page_addr 0x15000L;
              set_bit v Field.proc_based_ctls2 Controls.Proc2.virtual_interrupt_delivery)) };
    { check_id = "ctl.vpid_nonzero";
      build = (fun caps -> modify caps (fun v -> w v Field.vpid 0L)) };
    { check_id = "ctl.eptp_valid";
      build =
        (fun caps ->
          modify caps (fun v ->
              w v Field.ept_pointer
                (Controls.Eptp.make ~memtype:3 ~pml4:0x10_0000L ()))) };
    { check_id = "ctl.unrestricted_requires_ept";
      build =
        (fun caps ->
          modify caps (fun v ->
              set_bit v Field.proc_based_ctls2 Controls.Proc2.unrestricted_guest;
              clear_bit v Field.proc_based_ctls2 Controls.Proc2.enable_ept)) };
    { check_id = "ctl.pml";
      build =
        (fun caps ->
          modify caps (fun v ->
              set_bit v Field.proc_based_ctls2 Controls.Proc2.enable_pml;
              w v (Field.find_exn "PML_ADDRESS") 0x10L)) };
    { check_id = "ctl.vmfunc_requires_ept";
      build =
        (fun caps ->
          modify caps (fun v ->
              set_bit v Field.proc_based_ctls2 Controls.Proc2.enable_vmfunc;
              clear_bit v Field.proc_based_ctls2 Controls.Proc2.enable_ept)) };
    { check_id = "ctl.apic_access_align";
      build =
        (fun caps ->
          modify caps (fun v ->
              set_bit v Field.proc_based_ctls2 Controls.Proc2.virtualize_apic_accesses;
              w v Field.apic_access_addr 0x777L)) };
    { check_id = "ctl.exit_msr_areas";
      build =
        (fun caps ->
          modify caps (fun v ->
              w v Field.exit_msr_store_count 1L;
              w v Field.exit_msr_store_addr 0x7L)) };
    { check_id = "ctl.entry_msr_area";
      build =
        (fun caps ->
          modify caps (fun v ->
              w v Field.entry_msr_load_count 1L;
              w v Field.entry_msr_load_addr 0x9L)) };
    { check_id = "ctl.entry_intr_info";
      build =
        (fun caps ->
          modify caps (fun v ->
              w v Field.entry_intr_info
                (Nf_x86.Exn.Intr_info.make ~typ:1 ~vector:32 ()))) };
    { check_id = "ctl.smm";
      build =
        (fun caps ->
          modify caps (fun v ->
              set_bit v Field.entry_ctls Controls.Entry.entry_to_smm)) };
    { check_id = "ctl.preemption_timer_save";
      build =
        (fun caps ->
          modify caps (fun v ->
              set_bit v Field.exit_ctls Controls.Exit.save_preemption_timer)) };
    { check_id = "host.cr0_fixed";
      build =
        (fun caps ->
          modify caps (fun v -> clear_bit v Field.host_cr0 Nf_x86.Cr0.pe)) };
    { check_id = "host.cr4_fixed";
      build =
        (fun caps ->
          modify caps (fun v -> clear_bit v Field.host_cr4 Nf_x86.Cr4.vmxe)) };
    { check_id = "host.cr3_width";
      build =
        (fun caps ->
          modify caps (fun v -> w v Field.host_cr3 (Int64.shift_left 1L 50))) };
    { check_id = "host.addr_space";
      build =
        (fun caps ->
          modify caps (fun v ->
              clear_bit v Field.exit_ctls Controls.Exit.host_address_space_size;
              (* keep host EFER consistent so only addr_space trips *)
              clear_bit v Field.exit_ctls Controls.Exit.load_ia32_efer)) };
    { check_id = "host.canonical";
      build =
        (fun caps ->
          modify caps (fun v -> w v Field.host_fs_base 0x8000_0000_0000_0000L)) };
    { check_id = "host.selectors";
      build =
        (fun caps -> modify caps (fun v -> w v Field.host_cs_selector 0x13L)) };
    { check_id = "host.efer";
      build =
        (fun caps ->
          modify caps (fun v ->
              w v Field.host_ia32_efer (bits [ Nf_x86.Efer.lme ]))) };
    { check_id = "host.pat";
      build =
        (fun caps ->
          modify caps (fun v ->
              set_bit v Field.exit_ctls Controls.Exit.load_ia32_pat;
              w v Field.host_ia32_pat 0x02L)) };
    { check_id = "host.perf_global";
      build =
        (fun caps ->
          modify caps (fun v ->
              set_bit v Field.exit_ctls Controls.Exit.load_perf_global_ctrl;
              w v (Field.find_exn "HOST_IA32_PERF_GLOBAL_CTRL")
                (Int64.shift_left 1L 20))) };
    { check_id = "guest.cr0_fixed";
      build =
        (fun caps ->
          modify caps (fun v -> clear_bit v Field.guest_cr0 Nf_x86.Cr0.ne)) };
    { check_id = "guest.cr0_pg_pe";
      build =
        (fun caps ->
          let v = golden_unrestricted caps in
          clear_bit v Field.guest_cr0 Nf_x86.Cr0.pe;
          (* keep PG set: PG without PE *)
          v) };
    { check_id = "guest.cr4_fixed";
      build =
        (fun caps ->
          modify caps (fun v -> clear_bit v Field.guest_cr4 Nf_x86.Cr4.vmxe)) };
    { check_id = "guest.ia32e_pg";
      build =
        (fun caps ->
          let v = golden_unrestricted caps in
          clear_bit v Field.guest_cr0 Nf_x86.Cr0.pg;
          (* EFER.LME stays set with PG clear: legal under SVM, checked on
             VMX via LMA below — avoid tripping guest.efer first *)
          clear_bit v Field.entry_ctls Controls.Entry.load_ia32_efer;
          v) };
    { check_id = "guest.ia32e_pae";
      (* The CVE-2023-30456 witness. *)
      build =
        (fun caps ->
          modify caps (fun v -> clear_bit v Field.guest_cr4 Nf_x86.Cr4.pae)) };
    { check_id = "guest.legacy_pcide";
      build =
        (fun caps ->
          let v = golden_legacy caps in
          set_bit v Field.guest_cr4 Nf_x86.Cr4.pcide;
          v) };
    { check_id = "guest.cr3_width";
      build =
        (fun caps ->
          modify caps (fun v -> w v Field.guest_cr3 (Int64.shift_left 1L 50))) };
    { check_id = "guest.debugctl";
      build =
        (fun caps ->
          modify caps (fun v ->
              set_bit v Field.entry_ctls Controls.Entry.load_debug_controls;
              w v Field.guest_ia32_debugctl 0xFFFFL)) };
    { check_id = "guest.dr7_high";
      build =
        (fun caps ->
          modify caps (fun v ->
              set_bit v Field.entry_ctls Controls.Entry.load_debug_controls;
              w v Field.guest_dr7 (Int64.shift_left 1L 35))) };
    { check_id = "guest.sysenter_canonical";
      build =
        (fun caps ->
          modify caps (fun v ->
              w v Field.guest_sysenter_esp 0x8000_0000_0000_0000L)) };
    { check_id = "guest.pat";
      build =
        (fun caps ->
          modify caps (fun v ->
              set_bit v Field.entry_ctls Controls.Entry.load_ia32_pat;
              w v Field.guest_ia32_pat 0x03L)) };
    { check_id = "guest.efer";
      build =
        (fun caps ->
          modify caps (fun v ->
              w v Field.guest_ia32_efer (bits [ Nf_x86.Efer.lme; Nf_x86.Efer.sce ]))) };
    { check_id = "guest.bndcfgs";
      build =
        (fun caps ->
          modify caps (fun v ->
              set_bit v Field.entry_ctls Controls.Entry.load_bndcfgs;
              w v (Field.find_exn "GUEST_IA32_BNDCFGS") 0x4L)) };
    { check_id = "guest.rflags";
      build =
        (fun caps ->
          modify caps (fun v -> w v Field.guest_rflags 0L)) };
    { check_id = "guest.rflags_vm";
      build =
        (fun caps ->
          modify caps (fun v -> set_bit v Field.guest_rflags Nf_x86.Rflags.vm)) };
    { check_id = "guest.rflags_if_injection";
      build =
        (fun caps ->
          modify caps (fun v ->
              w v Field.entry_intr_info
                (Nf_x86.Exn.Intr_info.make
                   ~typ:Nf_x86.Exn.Intr_info.type_external ~vector:0x20 ())
              (* golden RFLAGS.IF is clear *))) };
    { check_id = "guest.activity";
      build =
        (fun caps ->
          modify caps (fun v -> w v Field.guest_activity_state 5L)) };
    { check_id = "guest.activity_hlt_dpl";
      build =
        (fun caps ->
          modify caps (fun v ->
              w v Field.guest_activity_state Field.Activity.hlt;
              let ar = Vmcs.read v (Field.guest_ar Nf_x86.Seg.SS) in
              w v (Field.guest_ar Nf_x86.Seg.SS)
                (Nf_stdext.Bits.insert ar ~lo:5 ~width:2 3L))) };
    { check_id = "guest.activity_sipi_injection";
      build =
        (fun caps ->
          modify caps (fun v ->
              w v Field.guest_activity_state Field.Activity.wait_for_sipi;
              w v Field.entry_intr_info
                (Nf_x86.Exn.Intr_info.make ~typ:Nf_x86.Exn.Intr_info.type_nmi
                   ~vector:2 ()))) };
    { check_id = "guest.interruptibility";
      build =
        (fun caps ->
          modify caps (fun v -> w v Field.guest_interruptibility 3L)) };
    { check_id = "guest.pending_dbg";
      build =
        (fun caps ->
          modify caps (fun v ->
              w v Field.guest_pending_dbg (Int64.shift_left 1L 5))) };
    { check_id = "guest.vmcs_link";
      build =
        (fun caps ->
          modify caps (fun v -> w v Field.vmcs_link_pointer 0x1000L)) };
    { check_id = "guest.pdpte";
      build =
        (fun caps ->
          let v = golden_legacy caps in
          clear_bit v Field.entry_ctls Controls.Entry.load_ia32_efer;
          w v (Field.find_exn "GUEST_PDPTE0")
            (Int64.logor 1L (Int64.shift_left 1L 50));
          v) };
    { check_id = "guest.gdtr_idtr";
      build =
        (fun caps ->
          modify caps (fun v ->
              w v Field.guest_gdtr_base 0x8000_0000_0000_0000L)) };
    { check_id = "guest.rip";
      build =
        (fun caps ->
          modify caps (fun v -> w v Field.guest_rip 0x8000_0000_0000_0000L)) };
    { check_id = "guest.seg.cs";
      build =
        (fun caps ->
          modify caps (fun v ->
              let ar = Vmcs.read v (Field.guest_ar Nf_x86.Seg.CS) in
              w v (Field.guest_ar Nf_x86.Seg.CS)
                (Nf_stdext.Bits.insert ar ~lo:0 ~width:4 4L))) };
    { check_id = "guest.seg.ss";
      build =
        (fun caps ->
          modify caps (fun v ->
              let ar = Vmcs.read v (Field.guest_ar Nf_x86.Seg.SS) in
              w v (Field.guest_ar Nf_x86.Seg.SS)
                (Nf_stdext.Bits.insert ar ~lo:0 ~width:4 5L))) };
    { check_id = "guest.seg.ds";
      build =
        (fun caps ->
          modify caps (fun v ->
              let ar = Vmcs.read v (Field.guest_ar Nf_x86.Seg.DS) in
              w v (Field.guest_ar Nf_x86.Seg.DS)
                (Nf_stdext.Bits.insert ar ~lo:0 ~width:4 8L))) };
    { check_id = "guest.seg.es";
      build =
        (fun caps ->
          modify caps (fun v ->
              let ar = Vmcs.read v (Field.guest_ar Nf_x86.Seg.ES) in
              w v (Field.guest_ar Nf_x86.Seg.ES) (Nf_stdext.Bits.set ar 9))) };
    { check_id = "guest.seg.fs";
      build =
        (fun caps ->
          modify caps (fun v ->
              w v (Field.guest_base Nf_x86.Seg.FS) 0x8000_0000_0000_0000L)) };
    { check_id = "guest.seg.gs";
      build =
        (fun caps ->
          modify caps (fun v ->
              w v (Field.guest_limit Nf_x86.Seg.GS) 0xFFF0_0000L)) };
    { check_id = "guest.seg.ldtr";
      build =
        (fun caps ->
          modify caps (fun v ->
              w v (Field.guest_ar Nf_x86.Seg.LDTR)
                (Nf_x86.Seg.Ar.make ~typ:3 ~code_data:false ~gran:false ()))) };
    { check_id = "guest.seg.tr";
      build =
        (fun caps ->
          modify caps (fun v ->
              let ar = Vmcs.read v (Field.guest_ar Nf_x86.Seg.TR) in
              w v (Field.guest_ar Nf_x86.Seg.TR)
                (Nf_stdext.Bits.insert ar ~lo:0 ~width:4 9L))) };
  ]

let find_vmx check_id = List.find (fun t -> t.check_id = check_id) vmx

(* --- SVM witnesses --- *)

type svm_t = {
  svm_check_id : string;
  svm_build : Nf_cpu.Svm_caps.t -> Nf_vmcb.Vmcb.t;
}

let svm_modify caps f =
  let vmcb = Golden.vmcb caps in
  f vmcb;
  vmcb

let svm : svm_t list =
  let open Nf_vmcb in
  [
    { svm_check_id = "svm.efer_svme";
      svm_build =
        (fun caps ->
          svm_modify caps (fun v ->
              Vmcb.set_bit v Vmcb.efer Nf_x86.Efer.svme false)) };
    { svm_check_id = "svm.efer_reserved";
      svm_build =
        (fun caps -> svm_modify caps (fun v -> Vmcb.set_bit v Vmcb.efer 5 true)) };
    { svm_check_id = "svm.cr0_cd_nw";
      svm_build =
        (fun caps ->
          svm_modify caps (fun v -> Vmcb.set_bit v Vmcb.cr0 Nf_x86.Cr0.nw true)) };
    { svm_check_id = "svm.cr0_high";
      svm_build =
        (fun caps -> svm_modify caps (fun v -> Vmcb.set_bit v Vmcb.cr0 40 true)) };
    { svm_check_id = "svm.cr3_mbz";
      svm_build =
        (fun caps -> svm_modify caps (fun v -> Vmcb.set_bit v Vmcb.cr3 55 true)) };
    { svm_check_id = "svm.cr4_reserved";
      svm_build =
        (fun caps -> svm_modify caps (fun v -> Vmcb.set_bit v Vmcb.cr4 27 true)) };
    { svm_check_id = "svm.dr6_high";
      svm_build =
        (fun caps -> svm_modify caps (fun v -> Vmcb.set_bit v Vmcb.dr6 40 true)) };
    { svm_check_id = "svm.dr7_high";
      svm_build =
        (fun caps -> svm_modify caps (fun v -> Vmcb.set_bit v Vmcb.dr7 40 true)) };
    { svm_check_id = "svm.long_mode_pae";
      svm_build =
        (fun caps ->
          svm_modify caps (fun v ->
              Vmcb.set_bit v Vmcb.cr4 Nf_x86.Cr4.pae false)) };
    { svm_check_id = "svm.long_mode_pe";
      svm_build =
        (fun caps ->
          svm_modify caps (fun v ->
              Vmcb.set_bit v Vmcb.cr0 Nf_x86.Cr0.pe false)) };
    { svm_check_id = "svm.long_mode_cs";
      svm_build =
        (fun caps ->
          svm_modify caps (fun v ->
              let a = Vmcb.read v (Vmcb.seg_attrib Nf_x86.Seg.CS) in
              Vmcb.write v (Vmcb.seg_attrib Nf_x86.Seg.CS)
                (Nf_stdext.Bits.set a 10))) };
    { svm_check_id = "svm.asid";
      svm_build =
        (fun caps -> svm_modify caps (fun v -> Vmcb.write v Vmcb.guest_asid 0L)) };
    { svm_check_id = "svm.vmrun_intercept";
      svm_build =
        (fun caps ->
          svm_modify caps (fun v ->
              Vmcb.set_bit v Vmcb.intercept_vec4 Vmcb.Vec4.vmrun false)) };
    { svm_check_id = "svm.iopm_mbz";
      svm_build =
        (fun caps ->
          svm_modify caps (fun v -> Vmcb.set_bit v Vmcb.iopm_base_pa 55 true)) };
    { svm_check_id = "svm.msrpm_mbz";
      svm_build =
        (fun caps ->
          svm_modify caps (fun v -> Vmcb.set_bit v Vmcb.msrpm_base_pa 55 true)) };
    { svm_check_id = "svm.ncr3_mbz";
      svm_build =
        (fun caps ->
          svm_modify caps (fun v -> Vmcb.write v Vmcb.n_cr3 0x8123L)) };
    { svm_check_id = "svm.event_inj";
      svm_build =
        (fun caps ->
          svm_modify caps (fun v ->
              Vmcb.write v Vmcb.event_inj
                (Nf_stdext.Bits.set (Int64.shift_left 5L 8) 31))) };
    { svm_check_id = "svm.rflags_reserved";
      svm_build =
        (fun caps ->
          svm_modify caps (fun v ->
              Vmcb.set_bit v Vmcb.rflags Nf_x86.Rflags.reserved_one false)) };
  ]

let find_svm check_id = List.find (fun t -> t.svm_check_id = check_id) svm
