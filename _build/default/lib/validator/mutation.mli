(** Boundary mutation (§4.3): after rounding a VMCS to validity, flip a
    few bits in security-critical fields so the state lands near the
    valid/invalid boundary.

    The algorithm is the paper's: (1) select a field guided by fuzzing
    input (control fields, access-rights registers and the mode-defining
    registers weighted up), (2) select bit positions within the field's
    valid bit domain, (3) flip them, (4) repeat over 1–3 fields with 1–8
    bits each. *)

(** "The next byte of fuzzing input". *)
type byte_source = unit -> int

val of_rng : Nf_stdext.Rng.t -> byte_source
val of_bytes : ?pos:int -> Bytes.t -> byte_source

(** The architecturally meaningful bit positions of a field: defined CR
    bits, 22 RFLAGS bits, 2 activity bits, …; the full width for plain
    data fields. *)
val bit_domain : Nf_vmcs.Field.t -> int array

type flip = { field : Nf_vmcs.Field.t; bit : int }

(** Apply boundary mutation in place; returns the flips for reproducible
    crash reports. *)
val mutate : byte_source -> Nf_vmcs.Vmcs.t -> flip list

val pp_flip : Format.formatter -> flip -> unit

(** The full generation pipeline of §4.3: raw bytes → VMCS → round →
    selective invalidation. *)
val generate :
  Validator.t -> raw:Bytes.t -> byte_source -> Nf_vmcs.Vmcs.t * flip list
