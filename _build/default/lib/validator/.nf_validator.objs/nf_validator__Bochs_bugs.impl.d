lib/validator/bochs_bugs.ml: Ar Field Golden Int64 Nf_vmcs Nf_x86 Vmcs
