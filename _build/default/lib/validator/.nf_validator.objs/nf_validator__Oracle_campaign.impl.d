lib/validator/oracle_campaign.ml: Bochs_bugs Distribution Format List Mutation Nf_cpu Nf_stdext Nf_vmcs Nf_x86 Validator
