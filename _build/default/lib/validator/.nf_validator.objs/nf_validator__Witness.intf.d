lib/validator/witness.mli: Nf_cpu Nf_vmcb Nf_vmcs
