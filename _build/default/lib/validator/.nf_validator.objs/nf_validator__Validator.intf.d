lib/validator/validator.mli: Nf_cpu Nf_vmcs
