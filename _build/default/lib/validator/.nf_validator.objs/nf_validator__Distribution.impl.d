lib/validator/distribution.ml: Array Bytes Char Field Format Golden List Nf_stdext Nf_vmcs Validator Vmcs
