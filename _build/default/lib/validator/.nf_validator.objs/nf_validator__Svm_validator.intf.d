lib/validator/svm_validator.mli: Nf_cpu Nf_vmcb
