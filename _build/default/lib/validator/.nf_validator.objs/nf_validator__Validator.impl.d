lib/validator/validator.ml: Ar Controls Entry Exit Field Int64 List Nf_cpu Nf_stdext Nf_vmcs Nf_x86 Pin Printf Proc Proc2 Vmcs
