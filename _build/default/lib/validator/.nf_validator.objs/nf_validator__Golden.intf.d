lib/validator/golden.mli: Nf_cpu Nf_vmcb Nf_vmcs
