lib/validator/distribution.mli: Format Nf_cpu Nf_stdext Nf_vmcs
