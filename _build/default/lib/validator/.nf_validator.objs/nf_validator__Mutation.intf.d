lib/validator/mutation.mli: Bytes Format Nf_stdext Nf_vmcs Validator
