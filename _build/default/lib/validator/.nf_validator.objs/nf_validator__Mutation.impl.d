lib/validator/mutation.ml: Array Bytes Char Field Format Fun Int64 List Nf_stdext Nf_vmcs Nf_x86 String Validator Vmcs
