lib/validator/svm_validator.ml: Array Int64 List Nf_cpu Nf_stdext Nf_vmcb Nf_x86 Vmcb
