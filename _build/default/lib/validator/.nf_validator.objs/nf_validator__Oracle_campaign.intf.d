lib/validator/oracle_campaign.mli: Format Nf_cpu Nf_vmcs
