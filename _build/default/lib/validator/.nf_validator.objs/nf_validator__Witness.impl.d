lib/validator/witness.ml: Controls Field Golden Int64 List Nf_cpu Nf_stdext Nf_vmcb Nf_vmcs Nf_x86 Vmcb Vmcs
