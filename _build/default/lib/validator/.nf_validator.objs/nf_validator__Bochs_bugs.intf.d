lib/validator/bochs_bugs.mli: Nf_cpu Nf_vmcs Nf_x86
