lib/validator/golden.ml: Controls Entry Eptp Exit Field List Nf_cpu Nf_stdext Nf_vmcb Nf_vmcs Nf_x86 Proc Proc2 Vmcb Vmcs
