(** VM-state distribution measurements (paper §5.3.2 / Fig. 5).

    Three Hamming-distance distributions over the 165-field (~8,000-bit)
    VMCS layout:

    - random vs. validated: distance between a raw random state and its
      rounded counterpart ("how far is random from valid");
    - default vs. validated: distance between validated states and the
      default-initialized golden state ("diversity beyond defaults");
    - pairwise: distance between two independently generated validated
      states ("intra-set variability"). *)

open Nf_vmcs

type summary = {
  label : string;
  mean : float;
  stddev : float;
  min_d : int;
  max_d : int;
  samples : int;
  histogram : Nf_stdext.Stats.Histogram.t;
}

let random_vmcs rng =
  let v = Vmcs.create () in
  List.iter
    (fun f ->
      Vmcs.write v f
        (Nf_stdext.Bits.truncate (Nf_stdext.Rng.bits64 rng) (Field.bits f)))
    Field.all;
  v

(** A state built the way the fuzzer actually builds raw VMCS content:
    AFL++-style inputs are sparse mutations over near-empty seeds, so most
    bytes are zero and a small fraction carry entropy.  The diversity
    violins of Fig. 5 are measured over these, not over uniform noise. *)
let fuzzer_like_vmcs rng =
  let b = Bytes.make Vmcs.blob_bytes '\000' in
  for i = 0 to Bytes.length b - 1 do
    if Nf_stdext.Rng.chance rng ~num:12 ~den:100 then
      Bytes.set b i (Char.chr (Nf_stdext.Rng.byte rng))
  done;
  Vmcs.of_blob b

let summarize label distances =
  let xs = Array.map float_of_int distances in
  let max_d = Array.fold_left max 0 distances in
  let min_d = Array.fold_left min max_int distances in
  let histogram =
    Nf_stdext.Stats.Histogram.create ~lo:0.0
      ~hi:(float_of_int (max 1 max_d) +. 1.0)
      ~bins:20
  in
  Array.iter (Nf_stdext.Stats.Histogram.add histogram) xs;
  {
    label;
    mean = Nf_stdext.Stats.mean xs;
    stddev = Nf_stdext.Stats.stddev xs;
    min_d;
    max_d;
    samples = Array.length distances;
    histogram;
  }

(** Distance between raw random states and their rounded versions. *)
let random_vs_validated ~caps ~samples ~seed =
  let rng = Nf_stdext.Rng.create seed in
  let validator = Validator.create caps in
  let distances =
    Array.init samples (fun _ ->
        let raw = random_vmcs rng in
        let rounded = Vmcs.copy raw in
        Validator.round validator rounded;
        Vmcs.hamming raw rounded)
  in
  summarize "random vs validated" distances

(** Distance between validated states and the default golden state. *)
let default_vs_validated ~caps ~samples ~seed =
  let rng = Nf_stdext.Rng.create seed in
  let validator = Validator.create caps in
  let golden = Golden.vmcs caps in
  let distances =
    Array.init samples (fun _ ->
        let v = fuzzer_like_vmcs rng in
        Validator.round validator v;
        Vmcs.hamming v golden)
  in
  summarize "default vs validated" distances

(** Pairwise distance between independently generated validated states. *)
let pairwise ~caps ~samples ~seed =
  let rng = Nf_stdext.Rng.create seed in
  let validator = Validator.create caps in
  let fresh () =
    let v = fuzzer_like_vmcs rng in
    Validator.round validator v;
    v
  in
  let distances =
    Array.init samples (fun _ -> Vmcs.hamming (fresh ()) (fresh ()))
  in
  summarize "pairwise validated" distances

let pp_summary ppf s =
  Format.fprintf ppf "%-22s mean=%.1f bits  sd=%.1f  min=%d max=%d (n=%d)"
    s.label s.mean s.stddev s.min_d s.max_d s.samples
