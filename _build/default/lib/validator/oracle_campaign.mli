(** Validator differential testing against the hardware oracle (§3.4):
    generate boundary states in bulk, compare the model's verdict with
    the physical CPU's, learn quirks, and surface model bugs. *)

type report = {
  samples : int;
  agreements : int;
  quirks_learned : string list; (** check ids relaxed at runtime *)
  model_bugs : (string * Nf_vmcs.Vmcs.t) list;
      (** too-lax check id + witness state *)
}

val run : ?samples:int -> caps:Nf_cpu.Vmx_caps.t -> seed:int -> unit -> report

(** The regression scenario of Bochs PR #51: with the legacy (pre-patch)
    segment checks injected, does the oracle expose each bug?  Returns
    (description, exposed). *)
val run_with_legacy_bochs_checks :
  caps:Nf_cpu.Vmx_caps.t -> unit -> (string * bool) list

val pp : Format.formatter -> report -> unit
