(** VM-state distribution measurements (paper §5.3.2 / Fig. 5): Hamming
    distances over the 165-field, 8,000-bit VMCS layout. *)

type summary = {
  label : string;
  mean : float;
  stddev : float;
  min_d : int;
  max_d : int;
  samples : int;
  histogram : Nf_stdext.Stats.Histogram.t;
}

(** A uniformly random VM state (every field random within its width). *)
val random_vmcs : Nf_stdext.Rng.t -> Nf_vmcs.Vmcs.t

(** A state built the way the fuzzer actually builds raw VMCS content:
    sparse mutations over near-empty seeds. *)
val fuzzer_like_vmcs : Nf_stdext.Rng.t -> Nf_vmcs.Vmcs.t

val summarize : string -> int array -> summary

(** Distance between raw random states and their rounded versions ("how
    far is random from valid"). *)
val random_vs_validated :
  caps:Nf_cpu.Vmx_caps.t -> samples:int -> seed:int -> summary

(** Distance between validated states and the default golden state
    ("diversity beyond defaults"). *)
val default_vs_validated :
  caps:Nf_cpu.Vmx_caps.t -> samples:int -> seed:int -> summary

(** Distance between two independently generated validated states
    ("intra-set variability"). *)
val pairwise : caps:Nf_cpu.Vmx_caps.t -> samples:int -> seed:int -> summary

val pp_summary : Format.formatter -> summary -> unit
