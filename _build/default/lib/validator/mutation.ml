(** Boundary mutation (§4.3): after rounding a VMCS to validity, flip a
    few bits in security-critical fields so the state lands *near* the
    valid/invalid boundary.

    The algorithm is the paper's, verbatim: (1) select a field guided by
    fuzzing input, (2) select bit positions within the field's valid
    width, (3) flip them, (4) repeat over 1–3 fields with 1–8 bits each.
    Field selection is weighted toward control fields and access-rights
    registers, the areas the paper calls security-critical. *)

open Nf_vmcs

(** A byte source abstracts "the next byte of fuzzing input"; the harness
    wires the AFL++ input buffer here, tests wire an RNG. *)
type byte_source = unit -> int

let of_rng rng : byte_source = fun () -> Nf_stdext.Rng.byte rng

let of_bytes ?(pos = 0) b : byte_source =
  let cursor = ref pos in
  fun () ->
    if Bytes.length b = 0 then 0
    else begin
      let v = Char.code (Bytes.get b (!cursor mod Bytes.length b)) in
      incr cursor;
      v
    end

(* Selection table: security-critical fields — control fields,
   access-rights registers, and the mode-defining registers (CR0/CR3/CR4,
   EFER) whose interdependencies the consistency checks guard — appear
   three times, everything else mutable once; exit-information fields are
   read-only and never mutated. *)
let critical_state_fields =
  [ Field.guest_cr0; Field.guest_cr3; Field.guest_cr4; Field.guest_ia32_efer;
    Field.host_cr0; Field.host_cr4; Field.host_ia32_efer;
    Field.guest_rflags; Field.guest_activity_state;
    Field.guest_interruptibility ]

let selection_table =
  let weight f =
    match Field.group f with
    | Field.Exit_info -> 0
    | Field.Control -> 3
    | Field.Guest | Field.Host ->
        if List.mem f critical_state_fields then 3
        else begin
          let n = Field.name f in
          if String.length n > 3 && String.sub n (String.length n - 3) 3 = "_AR"
          then 3
          else 1
        end
  in
  Array.of_list
    (List.concat_map (fun f -> List.init (weight f) (fun _ -> f)) Field.all)

type flip = { field : Field.t; bit : int }

(* "The selection is constrained to the field's valid bit-width" (§4.3):
   for registers with architecturally defined bits, flips target those
   bits — flipping bit 55 of CR4 only re-proves the reserved-bits check,
   while flipping a *defined* bit probes a real consistency rule. *)
let bit_domain f : int array =
  let name = Field.name f in
  let ends s =
    String.length name >= String.length s
    && String.sub name (String.length name - String.length s) (String.length s) = s
  in
  if ends "_CR0" then Array.of_list Nf_x86.Cr0.all_defined
  else if ends "_CR4" then Array.of_list Nf_x86.Cr4.all_defined
  else if ends "_EFER" then Array.of_list Nf_x86.Efer.all_defined
  else if name = "GUEST_RFLAGS" then Array.init 22 Fun.id
  else if name = "GUEST_ACTIVITY_STATE" then [| 0; 1 |]
  else if name = "GUEST_INTERRUPTIBILITY" then Array.init 5 Fun.id
  else if ends "_AR" then Array.init 17 Fun.id
  else Array.init (Field.bits f) Fun.id

let bit_domains = Array.of_list (List.map bit_domain Field.all)

(** Apply boundary mutation to [vmcs] in place; returns the applied flips
    so the agent can log reproducible reports. *)
let mutate (next : byte_source) vmcs : flip list =
  let n_fields = 1 + (next () mod 3) in
  let flips = ref [] in
  for _ = 1 to n_fields do
    (* Two bytes of input select the field, through a mixing hash so that
       a single-bit input change (AFL's deterministic stage) reaches a
       completely different part of the selection table. *)
    let raw = (next () lsl 8) lor next () in
    let mixed =
      Int64.to_int
        (Int64.logand
           (Nf_stdext.Rng.bits64 (Nf_stdext.Rng.of_int64 (Int64.of_int raw)))
           0x3FFF_FFFFL)
    in
    let idx = mixed mod Array.length selection_table in
    let field = selection_table.(idx) in
    (* One to eight bits, biased toward single-bit flips: one precise
       violation is the most effective boundary probe; multi-bit flips
       mostly trip the first reserved-bits check. *)
    let b = next () in
    let n_bits = if b land 1 = 0 then 1 else 1 + (b lsr 1 mod 8) in
    let domain = bit_domains.(field) in
    for _ = 1 to n_bits do
      let bit = domain.(next () mod Array.length domain) in
      Vmcs.flip_bit vmcs field bit;
      flips := { field; bit } :: !flips
    done
  done;
  List.rev !flips

let pp_flip ppf { field; bit } =
  Format.fprintf ppf "%s[%d]" (Field.name field) bit

(** The full generation pipeline of §4.3: raw bytes → VMCS → round →
    selective invalidation.  Returns the state and the flips. *)
let generate (validator : Validator.t) ~(raw : Bytes.t) (next : byte_source) :
    Vmcs.t * flip list =
  let vmcs = Vmcs.of_blob raw in
  Validator.round validator vmcs;
  let flips = mutate next vmcs in
  (vmcs, flips)
