(** Violation witnesses: for (nearly) every consistency check, a VM state
    that fails exactly that check, built from the golden state.

    Consumers: the property-test suite (each witness must fail its own
    check and nothing earlier), the KVM-unit-tests baseline model (the
    real suite contains hand-written tests of exactly this shape), and
    documentation of what each check guards. *)

type t = {
  check_id : string;
  build : Nf_cpu.Vmx_caps.t -> Nf_vmcs.Vmcs.t;
}

(** One witness per VMX check (a >90% subset of [Nf_cpu.Vmx_checks.all],
    enforced by the test suite). *)
val vmx : t list

(** @raise Not_found when no witness exists for the id. *)
val find_vmx : string -> t

type svm_t = {
  svm_check_id : string;
  svm_build : Nf_cpu.Svm_caps.t -> Nf_vmcb.Vmcb.t;
}

val svm : svm_t list
val find_svm : string -> svm_t
