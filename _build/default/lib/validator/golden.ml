(** Golden VM states: the fully valid, default-initialized configurations a
    well-behaved hypervisor would program.

    The execution harness's initialization template starts from these, and
    the Fig. 5 experiment uses them as the "simple default-initialized
    values" reference point. *)

open Nf_vmcs

(** A canonical 64-bit guest VMCS that passes every VM-entry check of
    [Nf_cpu.Vmx_checks] under [caps]. *)
let vmcs (caps : Nf_cpu.Vmx_caps.t) : Vmcs.t =
  let v = Vmcs.create () in
  let w f value = Vmcs.write v f value in
  let open Controls in
  (* Controls: minimal valid settings — every control rounded into its
     capability envelope, secondary controls active with EPT + VPID. *)
  w Field.pin_based_ctls (Nf_cpu.Vmx_caps.ctl_round caps.pin 0L);
  let proc =
    Nf_cpu.Vmx_caps.ctl_round caps.proc
      (List.fold_left Nf_stdext.Bits.set 0L
         [ Proc.hlt_exiting; Proc.use_msr_bitmaps; Proc.activate_secondary_controls ])
  in
  w Field.proc_based_ctls proc;
  let proc2 =
    Nf_cpu.Vmx_caps.ctl_round caps.proc2
      (List.fold_left Nf_stdext.Bits.set 0L
         [ Proc2.enable_ept; Proc2.enable_vpid; Proc2.enable_rdtscp ])
  in
  w Field.proc_based_ctls2 proc2;
  w Field.exit_ctls
    (Nf_cpu.Vmx_caps.ctl_round caps.exit
       (List.fold_left Nf_stdext.Bits.set 0L
          [ Exit.host_address_space_size; Exit.load_ia32_efer; Exit.save_ia32_efer ]));
  w Field.entry_ctls
    (Nf_cpu.Vmx_caps.ctl_round caps.entry
       (List.fold_left Nf_stdext.Bits.set 0L
          [ Entry.ia32e_mode_guest; Entry.load_ia32_efer ]));
  if Nf_stdext.Bits.is_set proc2 (Proc2.enable_vpid) then w Field.vpid 1L;
  if Nf_stdext.Bits.is_set proc2 Proc2.enable_ept then
    w Field.ept_pointer
      (Eptp.make ~ad:caps.has_ept_ad ~pml4:0x10_0000L ());
  w Field.msr_bitmap 0x11000L;
  (* Host state: flat 64-bit kernel. *)
  w Field.host_cr0 (Nf_cpu.Vmx_caps.cr0_round caps 0x8005_0033L);
  w Field.host_cr3 0x2000L;
  w Field.host_cr4
    (Nf_cpu.Vmx_caps.cr4_round caps (Nf_stdext.Bits.set 0L Nf_x86.Cr4.pae));
  w Field.host_cs_selector 0x10L;
  w (Field.host_selector Nf_x86.Seg.SS) 0x18L;
  w (Field.host_selector Nf_x86.Seg.DS) 0x18L;
  w (Field.host_selector Nf_x86.Seg.ES) 0x18L;
  w (Field.host_selector Nf_x86.Seg.FS) 0x18L;
  w (Field.host_selector Nf_x86.Seg.GS) 0x18L;
  w Field.host_tr_selector 0x40L;
  w Field.host_rip 0xFFFF_8000_0010_0000L;
  w Field.host_rsp 0xFFFF_8000_0020_0000L;
  w Field.host_gdtr_base 0xFFFF_8000_0000_1000L;
  w Field.host_idtr_base 0xFFFF_8000_0000_2000L;
  w Field.host_tr_base 0xFFFF_8000_0000_3000L;
  w Field.host_ia32_efer
    (List.fold_left Nf_stdext.Bits.set 0L
       [ Nf_x86.Efer.lme; Nf_x86.Efer.lma; Nf_x86.Efer.sce; Nf_x86.Efer.nxe ]);
  (* Guest state: 64-bit flat guest at ring 0. *)
  w Field.guest_cr0 (Nf_cpu.Vmx_caps.cr0_round caps 0x8005_0033L);
  w Field.guest_cr3 0x4000L;
  w Field.guest_cr4
    (Nf_cpu.Vmx_caps.cr4_round caps (Nf_stdext.Bits.set 0L Nf_x86.Cr4.pae));
  w Field.guest_ia32_efer
    (List.fold_left Nf_stdext.Bits.set 0L
       [ Nf_x86.Efer.lme; Nf_x86.Efer.lma; Nf_x86.Efer.sce; Nf_x86.Efer.nxe ]);
  w Field.guest_rip 0x10_0000L;
  w Field.guest_rsp 0x20_0000L;
  w Field.guest_rflags 0x2L;
  w Field.guest_dr7 0x400L;
  w Field.vmcs_link_pointer (-1L);
  w Field.guest_activity_state Field.Activity.active;
  List.iter
    (fun r ->
      let open Nf_x86.Seg in
      let code = r = CS in
      w (Field.guest_selector r) (if code then 0x08L else 0x10L);
      w (Field.guest_limit r) 0xFFFF_FFFFL;
      w (Field.guest_base r) 0L;
      w (Field.guest_ar r) (if code then flat_code_ar else flat_data_ar))
    [ Nf_x86.Seg.CS; SS; DS; ES; FS; GS ];
  w (Field.guest_selector Nf_x86.Seg.TR) 0x40L;
  w (Field.guest_limit Nf_x86.Seg.TR) 0x67L;
  w (Field.guest_base Nf_x86.Seg.TR) 0x5000L;
  w (Field.guest_ar Nf_x86.Seg.TR) Nf_x86.Seg.tr_ar;
  w (Field.guest_selector Nf_x86.Seg.LDTR) 0L;
  w (Field.guest_ar Nf_x86.Seg.LDTR) Nf_x86.Seg.ldtr_unusable_ar;
  w Field.guest_gdtr_base 0x6000L;
  w Field.guest_gdtr_limit 0xFFL;
  w Field.guest_idtr_base 0x7000L;
  w Field.guest_idtr_limit 0xFFFL;
  v

(** A golden VMCB: 64-bit guest under nested paging with the customary
    intercepts, passing every VMRUN consistency check. *)
let vmcb (caps : Nf_cpu.Svm_caps.t) : Nf_vmcb.Vmcb.t =
  let open Nf_vmcb in
  let v = Vmcb.create () in
  let w f value = Vmcb.write v f value in
  w Vmcb.efer
    (List.fold_left Nf_stdext.Bits.set 0L
       [ Nf_x86.Efer.svme; Nf_x86.Efer.lme; Nf_x86.Efer.lma; Nf_x86.Efer.sce ]);
  w Vmcb.cr0 0x8005_0033L;
  w Vmcb.cr3 0x4000L;
  w Vmcb.cr4 (Nf_stdext.Bits.set 0L Nf_x86.Cr4.pae);
  w Vmcb.dr6 0xFFFF_0FF0L;
  w Vmcb.dr7 0x400L;
  w Vmcb.rflags 0x2L;
  w Vmcb.rip 0x10_0000L;
  w Vmcb.rsp 0x20_0000L;
  w Vmcb.guest_asid 1L;
  w Vmcb.intercept_vec4 (Nf_stdext.Bits.set 0L Vmcb.Vec4.vmrun);
  w Vmcb.intercept_vec3
    (List.fold_left Nf_stdext.Bits.set 0L
       [ Vmcb.Vec3.cpuid; Vmcb.Vec3.hlt; Vmcb.Vec3.msr_prot; Vmcb.Vec3.ioio_prot ]);
  if caps.has_npt then begin
    w Vmcb.nested_ctl (Nf_stdext.Bits.set 0L Vmcb.Nested.np_enable);
    w Vmcb.n_cr3 0x8000L
  end;
  w Vmcb.iopm_base_pa 0x12000L;
  w Vmcb.msrpm_base_pa 0x14000L;
  w (Vmcb.seg_selector Nf_x86.Seg.CS) 0x08L;
  w (Vmcb.seg_attrib Nf_x86.Seg.CS) 0x29BL;
  (* type B, S, P, L *)
  w (Vmcb.seg_limit Nf_x86.Seg.CS) 0xFFFF_FFFFL;
  List.iter
    (fun r ->
      w (Vmcb.seg_selector r) 0x10L;
      w (Vmcb.seg_attrib r) 0x93L;
      w (Vmcb.seg_limit r) 0xFFFF_FFFFL)
    [ Nf_x86.Seg.SS; DS; ES; FS; GS ];
  w (Vmcb.seg_attrib Nf_x86.Seg.TR) 0x8BL;
  w (Vmcb.seg_limit Nf_x86.Seg.TR) 0x67L;
  w Vmcb.g_pat 0x0007_0406_0007_0406L;
  v
