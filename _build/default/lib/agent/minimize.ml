(** Crash-reproducer minimization (afl-tmin for fuzz-harness VMs).

    The 2 KiB inputs saved by the agent contain everything the campaign
    happened to accumulate; for "subsequent manual analysis and
    debugging" (§4.5) one wants the minimal set of bytes that still
    triggers the anomaly.  Since inputs are fixed-size, minimization
    zeroes spans rather than deleting them: the result is an input of the
    same shape where every surviving non-zero byte is load-bearing. *)

(** [crashes input] must re-run the reproducer and report whether the
    anomaly still occurs. *)
type predicate = Bytes.t -> bool

(** Zero out [len] bytes at [off] (bounds-clamped), returning a copy. *)
let zeroed input ~off ~len =
  let b = Bytes.copy input in
  let len = min len (Bytes.length b - off) in
  if len > 0 then Bytes.fill b off len '\000';
  b

(** Binary block reduction: try zeroing halves, quarters, ... single
    bytes; keep each zeroing that preserves the crash.  Runs in
    O(n log n) predicate calls worst case, far fewer in practice. *)
let minimize ~(crashes : predicate) (input : Bytes.t) : Bytes.t * int =
  let calls = ref 0 in
  let try_crash b =
    incr calls;
    crashes b
  in
  if not (try_crash input) then
    invalid_arg "Minimize.minimize: input does not reproduce the crash";
  let current = ref (Bytes.copy input) in
  let block = ref (Bytes.length input / 2) in
  while !block >= 1 do
    let off = ref 0 in
    while !off < Bytes.length !current do
      (* Skip spans that are already zero. *)
      let len = min !block (Bytes.length !current - !off) in
      let all_zero = ref true in
      for i = !off to !off + len - 1 do
        if Bytes.get !current i <> '\000' then all_zero := false
      done;
      if not !all_zero then begin
        let candidate = zeroed !current ~off:!off ~len in
        if try_crash candidate then current := candidate
      end;
      off := !off + len
    done;
    block := !block / 2
  done;
  (!current, !calls)

let nonzero_bytes b =
  let n = ref 0 in
  Bytes.iter (fun c -> if c <> '\000' then incr n) b;
  !n

(** Convenience: build a crash predicate that boots a fresh target with
    the input's configuration, runs the executor, and checks whether any
    sanitizer event contains [marker]. *)
let crash_predicate ~(target : Agent.target)
    ~(ablation : Nf_harness.Executor.ablation) ~(marker : string) : predicate =
  let contains hay =
    let nl = String.length marker and hl = String.length hay in
    let rec go i =
      i + nl <= hl && (String.sub hay i nl = marker || go (i + 1))
    in
    nl = 0 || go 0
  in
  fun input ->
    let features =
      if ablation.Nf_harness.Executor.use_configurator then
        Nf_harness.Layout.config_of_input input
      else Nf_cpu.Features.default
    in
    let sanitizer = Nf_sanitizer.Sanitizer.create () in
    let hv = Agent.boot_target target ~features ~sanitizer in
    let vmx_validator = Nf_validator.Validator.create Nf_cpu.Vmx_caps.alder_lake in
    let svm_validator = Nf_validator.Svm_validator.create Nf_cpu.Svm_caps.zen3 in
    ignore
      (Nf_harness.Executor.run ~hv ~vmx_validator ~svm_validator ~ablation
         ~features ~input);
    List.exists
      (fun e -> contains (Nf_sanitizer.Sanitizer.event_message e))
      (Nf_sanitizer.Sanitizer.events sanitizer)
