lib/agent/agent.ml: Array Bytes Char Format Hashtbl List Nf_coverage Nf_cpu Nf_fuzzer Nf_harness Nf_hv Nf_kvm Nf_sanitizer Nf_stdext Nf_validator Nf_vbox Nf_vmcs Nf_xen String
