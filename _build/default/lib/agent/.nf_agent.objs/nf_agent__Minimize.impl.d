lib/agent/minimize.ml: Agent Bytes List Nf_cpu Nf_harness Nf_sanitizer Nf_validator String
