lib/agent/corpus.mli: Agent Bytes
