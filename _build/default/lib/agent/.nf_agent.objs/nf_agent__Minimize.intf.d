lib/agent/minimize.mli: Agent Bytes Nf_harness
