lib/agent/corpus.ml: Agent Array Bytes Char Filename Format Int64 List Nf_config Nf_coverage Nf_cpu Printf Sys
