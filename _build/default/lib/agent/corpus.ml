(** On-disk corpus and crash-report persistence (§4.5).

    "Upon detecting an anomaly or observing new code coverage, the agent
    saves the current fuzzing input to a timestamped file within a
    designated directory" — this module is that directory.  File names
    carry the virtual-time stamp and a content hash, so reports are
    stable across reruns and reproducible by feeding the saved input back
    through the executor. *)

type t = { dir : string }

let ensure_dir path =
  if not (Sys.file_exists path) then Sys.mkdir path 0o755
  else if not (Sys.is_directory path) then
    invalid_arg (Printf.sprintf "Corpus: %s exists and is not a directory" path)

let create ~dir =
  ensure_dir dir;
  ensure_dir (Filename.concat dir "queue");
  ensure_dir (Filename.concat dir "crashes");
  { dir }

(* A short content hash for stable file names (FNV-1a over the bytes). *)
let content_hash b =
  let h = ref 0xcbf29ce484222325L in
  Bytes.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    b;
  Printf.sprintf "%08Lx" (Int64.logand !h 0xFFFF_FFFFL)

let write_file path (b : Bytes.t) =
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.create n in
  really_input ic b 0 n;
  close_in ic;
  b

(** Save a queue (interesting) input; returns the path. *)
let save_input t ~at_us (input : Bytes.t) =
  let name = Printf.sprintf "id_%012Ld_%s.bin" at_us (content_hash input) in
  let path = Filename.concat (Filename.concat t.dir "queue") name in
  write_file path input;
  path

(** Save a crash reproducer together with a human-readable report;
    returns the reproducer path. *)
let save_crash t (c : Agent.crash_report) =
  let at_us = Int64.of_float (c.found_at_hours *. 3.6e9) in
  let stem = Printf.sprintf "crash_%012Ld_%s" at_us (content_hash c.reproducer) in
  let crashes = Filename.concat t.dir "crashes" in
  let bin = Filename.concat crashes (stem ^ ".bin") in
  write_file bin c.reproducer;
  let report = Filename.concat crashes (stem ^ ".txt") in
  let oc = open_out report in
  Printf.fprintf oc "detection: %s\n" c.detection;
  Printf.fprintf oc "message:   %s\n" c.message;
  Printf.fprintf oc "found at:  %.2f virtual hours\n" c.found_at_hours;
  Printf.fprintf oc "config:    %s\n"
    (Format.asprintf "%a" Nf_cpu.Features.pp c.config);
  Printf.fprintf oc "kvm-intel params: %s\n"
    (Nf_config.Vcpu_config.Kvm_adapter.module_params
       ~vendor:Nf_cpu.Cpu_model.Intel c.config);
  Printf.fprintf oc "reproducer: %s\n" (Filename.basename bin);
  close_out oc;
  bin

let list_dir t sub =
  let d = Filename.concat t.dir sub in
  Sys.readdir d |> Array.to_list |> List.sort compare
  |> List.map (Filename.concat d)

(** Load every saved queue input (e.g. to seed a follow-up campaign). *)
let load_inputs t =
  list_dir t "queue"
  |> List.filter (fun p -> Filename.check_suffix p ".bin")
  |> List.map read_file

let crash_files t =
  list_dir t "crashes" |> List.filter (fun p -> Filename.check_suffix p ".bin")

(** Write a campaign summary next to the corpus. *)
let write_summary t (r : Agent.result) =
  let oc = open_out (Filename.concat t.dir "summary.txt") in
  Printf.fprintf oc "target:     %s\n" (Agent.target_name r.cfg.target);
  Printf.fprintf oc "duration:   %.1f virtual hours\n" r.cfg.duration_hours;
  Printf.fprintf oc "executions: %d\n" r.execs;
  Printf.fprintf oc "corpus:     %d entries\n" r.corpus_size;
  Printf.fprintf oc "restarts:   %d\n" r.restarts;
  Printf.fprintf oc "coverage:   %.1f%%\n"
    (Nf_coverage.Coverage.Map.coverage_pct r.coverage);
  Printf.fprintf oc "crashes:    %d\n" (List.length r.crashes);
  List.iter
    (fun (c : Agent.crash_report) ->
      Printf.fprintf oc "  [%s] %s\n" c.detection c.message)
    r.crashes;
  close_out oc

(** Persist a finished campaign: all crashes plus the summary.  Returns
    the saved reproducer paths. *)
let persist_result t (r : Agent.result) =
  let paths = List.map (save_crash t) r.crashes in
  write_summary t r;
  paths
