(** Crash-reproducer minimization (afl-tmin for fuzz-harness VMs).

    Inputs are fixed-size, so minimization zeroes spans rather than
    deleting them: the result has the same shape and every surviving
    non-zero byte is load-bearing. *)

(** [crashes input] must re-run the reproducer and report whether the
    anomaly still occurs. *)
type predicate = Bytes.t -> bool

(** [zeroed input ~off ~len] is a copy with the span zeroed
    (bounds-clamped). *)
val zeroed : Bytes.t -> off:int -> len:int -> Bytes.t

(** Binary block reduction; returns the minimized input and the number of
    predicate calls spent.
    @raise Invalid_argument if [input] does not reproduce the crash. *)
val minimize : crashes:predicate -> Bytes.t -> Bytes.t * int

val nonzero_bytes : Bytes.t -> int

(** Build a crash predicate that boots a fresh [target] with the input's
    configuration, runs the executor, and checks whether any sanitizer
    message contains [marker]. *)
val crash_predicate :
  target:Agent.target ->
  ablation:Nf_harness.Executor.ablation ->
  marker:string ->
  predicate
