(** The agent program (§4.5): central coordinator of a fuzzing campaign.

    The agent connects AFL++ ([Nf_fuzzer]), the fuzz-harness VM
    ([Nf_harness.Executor]) and the target L0 hypervisor.  Per test case
    it: derives the vCPU configuration from the input and boots the
    hypervisor through the adapter, embeds the input into the UEFI
    executor and launches it, collects coverage into the shared bitmap,
    triages sanitizer output into crash reports, and drives the watchdog
    when the host goes down. *)

module Cov = Nf_coverage.Coverage
module San = Nf_sanitizer.Sanitizer

type target = Kvm_intel | Kvm_amd | Xen_intel | Xen_amd | Vbox

let target_name = function
  | Kvm_intel -> "KVM/Intel"
  | Kvm_amd -> "KVM/AMD"
  | Xen_intel -> "Xen/Intel"
  | Xen_amd -> "Xen/AMD"
  | Vbox -> "VirtualBox"

let target_region = function
  | Kvm_intel -> Nf_kvm.Vmx_nested.region
  | Kvm_amd -> Nf_kvm.Svm_nested.region
  | Xen_intel -> Nf_xen.Vmx_nested.region
  | Xen_amd -> Nf_xen.Svm_nested.region
  | Vbox -> Nf_vbox.Vbox.region

let target_vendor = function
  | Kvm_intel | Xen_intel | Vbox -> Nf_cpu.Cpu_model.Intel
  | Kvm_amd | Xen_amd -> Nf_cpu.Cpu_model.Amd

let boot_target target ~features ~sanitizer : Nf_hv.Hypervisor.packed =
  match target with
  | Kvm_intel -> Nf_kvm.Kvm.pack_intel ~features ~sanitizer
  | Kvm_amd -> Nf_kvm.Kvm.pack_amd ~features ~sanitizer
  | Xen_intel -> Nf_xen.Xen.pack_intel ~features ~sanitizer
  | Xen_amd -> Nf_xen.Xen.pack_amd ~features ~sanitizer
  | Vbox -> Nf_vbox.Vbox.pack ~features ~sanitizer

type cfg = {
  target : target;
  mode : Nf_fuzzer.Fuzzer.mode;
  ablation : Nf_harness.Executor.ablation;
  seed : int;
  duration_hours : float;
  checkpoint_hours : float;
}

let default_cfg target =
  {
    target;
    mode = Nf_fuzzer.Fuzzer.Guided;
    ablation = Nf_harness.Executor.full_ablation;
    seed = 1;
    duration_hours = 48.0;
    checkpoint_hours = 1.0;
  }

type crash_report = {
  detection : string; (* the "Detection Method" column of Table 6 *)
  message : string;
  reproducer : Bytes.t;
  found_at_hours : float;
  config : Nf_cpu.Features.t;
}

type result = {
  cfg : cfg;
  coverage : Cov.Map.t; (* accumulated over the whole campaign *)
  timeline : (float * float) list; (* (virtual hours, coverage %) *)
  crashes : crash_report list;
  execs : int;
  restarts : int;
  corpus_size : int;
}

(* Restarting a crashed/hung host costs real time on bare metal. *)
let watchdog_restart_cost_us = 180_000_000L

(* A golden-blob seed plus the empty input: the corpus AFL++ starts
   from. *)
let initial_seeds target =
  let zero = Nf_fuzzer.Input.zero () in
  let golden = Nf_fuzzer.Input.zero () in
  (match target_vendor target with
  | Nf_cpu.Cpu_model.Intel ->
      let blob =
        Nf_vmcs.Vmcs.to_blob (Nf_validator.Golden.vmcs Nf_cpu.Vmx_caps.alder_lake)
      in
      Bytes.blit blob 0 golden Nf_harness.Layout.vmcs_raw_off
        (min (Bytes.length blob) Nf_harness.Layout.vmcs_raw_len)
  | Nf_cpu.Cpu_model.Amd -> ());
  (* Default configuration bits: all features on. *)
  Bytes.fill golden Nf_harness.Layout.config_off Nf_harness.Layout.config_len
    '\xff';
  (* The directive slices (boundary flips, MSR area, phases) start with
     entropy so the very first corpus already explores diverse plans;
     AFL++ seeds are routinely non-empty protocol samples. *)
  let seeded = Nf_stdext.Rng.create 0x5eed in
  List.iter
    (fun (off, len) ->
      for i = off to off + len - 1 do
        Bytes.set golden i (Char.chr (Nf_stdext.Rng.byte seeded))
      done)
    [
      (Nf_harness.Layout.init_off, Nf_harness.Layout.init_len);
      (Nf_harness.Layout.runtime_off, Nf_harness.Layout.runtime_len);
      (Nf_harness.Layout.flips_off, Nf_harness.Layout.flips_len);
      (Nf_harness.Layout.msr_area_off, Nf_harness.Layout.msr_area_len);
    ];
  [ zero; golden ]

(** Fold a per-execution coverage map into the fuzzer's edge bitmap. *)
let fold_bitmap (bitmap : Cov.Bitmap.t) (map : Cov.Map.t) region =
  Array.iter
    (fun p ->
      let c = Cov.Map.hit_count map p in
      if c > 0 then begin
        let idx = p.Cov.id * 2654435761 land (Cov.Bitmap.size - 1) in
        bitmap.Cov.Bitmap.counts.(idx) <- bitmap.Cov.Bitmap.counts.(idx) + c
      end)
    (Cov.probes region)

let dedup_key message = String.sub message 0 (min 48 (String.length message))

let run (cfg : cfg) : result =
  let region = target_region cfg.target in
  let campaign_cov = Cov.Map.create region in
  let clock = Nf_stdext.Vclock.create () in
  let deadline = Nf_stdext.Vclock.of_hours cfg.duration_hours in
  let fuzzer = Nf_fuzzer.Fuzzer.create ~mode:cfg.mode ~seed:cfg.seed () in
  List.iter (Nf_fuzzer.Fuzzer.seed_input fuzzer) (initial_seeds cfg.target);
  let crashes = ref [] in
  let seen_crashes = Hashtbl.create 17 in
  let restarts = ref 0 in
  let execs = ref 0 in
  let timeline = ref [ (0.0, 0.0) ] in
  let next_checkpoint = ref cfg.checkpoint_hours in
  let vmx_validator = Nf_validator.Validator.create Nf_cpu.Vmx_caps.alder_lake in
  let svm_validator = Nf_validator.Svm_validator.create Nf_cpu.Svm_caps.zen3 in
  while not (Nf_stdext.Vclock.reached clock ~deadline_us:deadline) do
    let input = Nf_fuzzer.Fuzzer.next_input fuzzer in
    incr execs;
    (* vCPU configuration: from the input (through the adapter) or the
       default when the configurator is ablated. *)
    let features =
      if cfg.ablation.Nf_harness.Executor.use_configurator then
        Nf_harness.Layout.config_of_input input
      else Nf_cpu.Features.default
    in
    let sanitizer = San.create () in
    let hv = boot_target cfg.target ~features ~sanitizer in
    let outcome =
      Nf_harness.Executor.run ~hv ~vmx_validator ~svm_validator
        ~ablation:cfg.ablation ~features ~input
    in
    Nf_stdext.Vclock.advance_us clock outcome.cost_us;
    (* Coverage collection (KCOV/gcov -> shared-memory bitmap). *)
    let bitmap = Cov.Bitmap.create () in
    (match Nf_hv.Hypervisor.packed_coverage hv with
    | Some map ->
        Cov.Map.merge campaign_cov map;
        fold_bitmap bitmap map region
    | None -> () (* closed-source target: black-box *));
    let crashed =
      match outcome.termination with
      | Nf_harness.Executor.Completed -> San.has_reportable sanitizer
      | Vm_died _ | Host_crashed _ -> true
    in
    ignore
      (Nf_fuzzer.Fuzzer.report fuzzer ~input ~crashed ~bitmap
         ~now_us:(Nf_stdext.Vclock.now_us clock) ());
    (* Vulnerability detection: sanitizers and log monitoring. *)
    List.iter
      (fun event ->
        if San.is_reportable event then begin
          let msg = San.event_message event in
          let key = dedup_key msg in
          if not (Hashtbl.mem seen_crashes key) then begin
            Hashtbl.add seen_crashes key ();
            crashes :=
              {
                detection = San.event_kind event;
                message = msg;
                reproducer = Bytes.copy input;
                found_at_hours = Nf_stdext.Vclock.now_hours clock;
                config = features;
              }
              :: !crashes
          end
        end)
      (San.events sanitizer);
    (* Watchdog: a host crash costs a reboot. *)
    (match outcome.termination with
    | Nf_harness.Executor.Host_crashed _ ->
        incr restarts;
        Nf_stdext.Vclock.advance_us clock watchdog_restart_cost_us
    | Completed | Vm_died _ -> ());
    (* Timeline checkpoints. *)
    while
      !next_checkpoint <= cfg.duration_hours
      && Nf_stdext.Vclock.now_hours clock >= !next_checkpoint
    do
      timeline := (!next_checkpoint, Cov.Map.coverage_pct campaign_cov) :: !timeline;
      next_checkpoint := !next_checkpoint +. cfg.checkpoint_hours
    done
  done;
  timeline := (cfg.duration_hours, Cov.Map.coverage_pct campaign_cov) :: !timeline;
  {
    cfg;
    coverage = campaign_cov;
    timeline = List.rev !timeline;
    crashes = List.rev !crashes;
    execs = !execs;
    restarts = !restarts;
    corpus_size = Nf_fuzzer.Fuzzer.queue_size fuzzer;
  }

let pp_crash ppf (c : crash_report) =
  Format.fprintf ppf "[%s] %s (found at %.1fh, config %a)" c.detection
    c.message c.found_at_hours Nf_cpu.Features.pp c.config
