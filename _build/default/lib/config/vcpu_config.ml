(** vCPU configurator (§3.5/§4.4).

    The hypervisor-independent core turns fuzzing-input bytes into a
    feature bit-array ([Nf_cpu.Features.t]); a small per-hypervisor
    adapter renders the configuration in that hypervisor's native
    interface (kernel module parameters + QEMU command line for KVM, xl
    options for Xen, VBoxManage flags for VirtualBox).  The adapters also
    document, in reports, how to reproduce a configuration by hand. *)

(** Derive a feature configuration from a fuzzing-input bit array.  Bit i
    of [bits] decides flag i; trailing flags default to enabled.  The
    result is normalized so dependent features are consistent, exactly as
    the module-parameter handling of a real hypervisor would. *)
let of_bits (bits : int) : Nf_cpu.Features.t =
  let f = ref Nf_cpu.Features.default in
  for i = 0 to Nf_cpu.Features.flag_count - 1 do
    f := Nf_cpu.Features.with_nth_flag !f i (bits land (1 lsl i) <> 0)
  done;
  Nf_cpu.Features.normalize !f

let of_bytes (b : Bytes.t) ~pos : Nf_cpu.Features.t =
  let byte i =
    if Bytes.length b = 0 then 0xFF
    else Char.code (Bytes.get b ((pos + i) mod Bytes.length b))
  in
  of_bits (byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16))

(** Mutate one feature flag, for configuration-space exploration that is
    independent of a full regeneration. *)
let flip_flag (f : Nf_cpu.Features.t) i =
  Nf_cpu.Features.normalize
    (Nf_cpu.Features.with_nth_flag f i (not (Nf_cpu.Features.nth_flag f i)))

(** KVM adapter: kernel module parameters + QEMU command line. *)
module Kvm_adapter = struct
  let module_params ~(vendor : Nf_cpu.Cpu_model.vendor) (f : Nf_cpu.Features.t) =
    let b v = if v then "1" else "0" in
    match vendor with
    | Intel ->
        Printf.sprintf
          "kvm-intel nested=%s ept=%s unrestricted_guest=%s vpid=%s \
           enable_shadow_vmcs=%s enable_apicv=%s preemption_timer=%s pml=%s"
          (b f.nested) (b f.ept) (b f.unrestricted_guest) (b f.vpid)
          (b f.vmcs_shadowing) (b f.apicv) (b f.preemption_timer) (b f.pml)
    | Amd ->
        Printf.sprintf
          "kvm-amd nested=%s npt=%s nrips=%s vgif=%s avic=%s vls=%s \
           pause_filter_count=%s"
          (b f.nested) (b f.npt) (b f.nrips) (b f.vgif) (b f.avic) (b f.vls)
          (if f.pause_filter then "3000" else "0")

  let qemu_cmdline ~(vendor : Nf_cpu.Cpu_model.vendor) (f : Nf_cpu.Features.t) =
    let vmx_or_svm =
      match vendor with
      | Intel -> if f.nested then "+vmx" else "-vmx"
      | Amd -> if f.nested then "+svm" else "-svm"
    in
    Printf.sprintf "qemu-kvm -cpu host,%s -smp 1 -m 1G" vmx_or_svm
end

(** Xen adapter: guest configuration file fragment. *)
module Xen_adapter = struct
  let guest_cfg (f : Nf_cpu.Features.t) =
    Printf.sprintf "type=\"hvm\"\nnestedhvm=%d\nhap=%d\napic=1"
      (if f.nested then 1 else 0)
      (if f.ept || f.npt then 1 else 0)
end

(** VirtualBox adapter: VBoxManage invocation. *)
module Vbox_adapter = struct
  let modifyvm (f : Nf_cpu.Features.t) =
    Printf.sprintf
      "VBoxManage modifyvm fuzz-harness --nested-hw-virt %s --vtx-vpid %s \
       --large-pages %s"
      (if f.nested then "on" else "off")
      (if f.vpid then "on" else "off")
      (if f.ept then "on" else "off")
end
