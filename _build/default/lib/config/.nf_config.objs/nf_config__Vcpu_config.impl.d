lib/config/vcpu_config.ml: Bytes Char Nf_cpu Printf
