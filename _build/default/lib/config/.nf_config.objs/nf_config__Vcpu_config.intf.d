lib/config/vcpu_config.mli: Bytes Nf_cpu
