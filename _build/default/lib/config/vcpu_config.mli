(** vCPU configurator (§3.5/§4.4).

    The hypervisor-independent core turns fuzzing-input bytes into a
    feature bit-array ({!Nf_cpu.Features.t}); a small per-hypervisor
    adapter renders the configuration in that hypervisor's native
    interface.  The adapters also document, in crash reports, how to
    reproduce a configuration by hand. *)

(** Derive a feature configuration from a bit array: bit [i] decides
    flag [i].  The result is normalized (dependent features consistent),
    exactly as a real hypervisor's module-parameter handling would. *)
val of_bits : int -> Nf_cpu.Features.t

(** Read the configuration bits from a fuzzing input at byte offset
    [pos]. *)
val of_bytes : Bytes.t -> pos:int -> Nf_cpu.Features.t

(** Toggle one feature flag and re-normalize. *)
val flip_flag : Nf_cpu.Features.t -> int -> Nf_cpu.Features.t

(** KVM adapter: kernel module parameters and QEMU command line. *)
module Kvm_adapter : sig
  val module_params :
    vendor:Nf_cpu.Cpu_model.vendor -> Nf_cpu.Features.t -> string

  val qemu_cmdline :
    vendor:Nf_cpu.Cpu_model.vendor -> Nf_cpu.Features.t -> string
end

(** Xen adapter: guest configuration file fragment. *)
module Xen_adapter : sig
  val guest_cfg : Nf_cpu.Features.t -> string
end

(** VirtualBox adapter: VBoxManage invocation. *)
module Vbox_adapter : sig
  val modifyvm : Nf_cpu.Features.t -> string
end
