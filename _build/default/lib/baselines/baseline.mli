(** Shared result shape for the comparison tools of §5.1. *)

type run_result = {
  label : string;
  coverage : Nf_coverage.Coverage.Map.t;
  timeline : (float * float) list; (** (virtual hours, coverage %) *)
  execs : int;
}

(** A timeline for a tool that saturates at [at] hours and stays flat. *)
val timeline_of :
  hours:float -> at:float -> float -> (float * float) list
