(** Behavioural model of Syzkaller's nested-virtualization fuzzing
    (google/syzkaller commit 96a211b): ioctl-driven, a manually written
    Intel harness with golden or wholly random VM states (no validity
    boundaries), good syscall-sequence mutation, and no AMD nested
    harness at all — the structural limits behind its Table 2 rows. *)

val run_intel : seed:int -> duration_hours:float -> Baseline.run_result

(** Generic ioctl programs only: the ~7% row of Table 2. *)
val run_amd : seed:int -> duration_hours:float -> Baseline.run_result
