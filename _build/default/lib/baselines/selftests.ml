(** Behavioural model of the Linux kernel KVM selftests
    (tools/testing/selftests/kvm): 60 deterministic test programs that
    drive KVM through ioctl()s and small guest stubs, finishing in about
    80 seconds (§5.2).

    Selftests are the one baseline that exercises the host-side nested
    state save/restore interface — the source of the "Selftests −
    NecoFuzz" rows of Table 2. *)

open Nf_vmcs
module Cov = Nf_coverage.Coverage
open Suite_util

let golden () = Nf_validator.Golden.vmcs intel_caps

let witness id = (Nf_validator.Witness.find_vmx id).build intel_caps

let intel_scenario name f : scenario =
  {
    name = "vmx_" ^ name;
    run =
      (fun () ->
        let kvm = fresh_kvm_intel () in
        f kvm;
        kvm.Nf_kvm.Vmx_nested.cov);
  }

let l1 kvm op = Nf_kvm.Vmx_nested.exec_l1 kvm op
let setup kvm vmcs12 = vmx_setup (l1 kvm) vmcs12

let launch_and_run kvm vmcs12 insns =
  if setup kvm vmcs12 then
    l2_loop (Nf_kvm.Vmx_nested.exec_l2 kvm) (l1 kvm) Nf_hv.L1_op.Vmresume insns

let entry_failure_test id kvm = ignore (setup kvm (witness id))

let intel_cases : scenario list =
  [
    intel_scenario "vmx_feature_test" (fun kvm ->
        ignore (l1 kvm (Nf_hv.L1_op.L1_insn (Nf_cpu.Insn.Rdmsr Nf_x86.Msr.ia32_vmx_basic)));
        ignore (l1 kvm (Nf_hv.L1_op.L1_insn (Nf_cpu.Insn.Rdmsr Nf_x86.Msr.ia32_vmx_entry_ctls))));
    intel_scenario "vmxon_test" (fun kvm ->
        ignore (l1 kvm (Nf_hv.L1_op.L1_insn (Nf_cpu.Insn.Mov_to_cr (4, Nf_stdext.Bits.set 0L Nf_x86.Cr4.vmxe))));
        ignore (l1 kvm (Nf_hv.L1_op.L1_insn (Nf_cpu.Insn.Wrmsr (Nf_x86.Msr.ia32_feature_control, 5L))));
        ignore (l1 kvm (Nf_hv.L1_op.Vmxon 0x3000L));
        ignore (l1 kvm (Nf_hv.L1_op.Vmxon 0x3000L)) (* double vmxon *));
    intel_scenario "vmxon_bad_address_test" (fun kvm ->
        ignore (l1 kvm (Nf_hv.L1_op.L1_insn (Nf_cpu.Insn.Mov_to_cr (4, Nf_stdext.Bits.set 0L Nf_x86.Cr4.vmxe))));
        ignore (l1 kvm (Nf_hv.L1_op.L1_insn (Nf_cpu.Insn.Wrmsr (Nf_x86.Msr.ia32_feature_control, 5L))));
        ignore (l1 kvm (Nf_hv.L1_op.Vmxon 0x3001L)));
    intel_scenario "vmclear_test" (fun kvm ->
        ignore (setup kvm (golden ()));
        ignore (l1 kvm (Nf_hv.L1_op.Vmclear 0x1000L));
        ignore (l1 kvm (Nf_hv.L1_op.Vmclear 0x3000L)) (* vmxon ptr *);
        ignore (l1 kvm (Nf_hv.L1_op.Vmclear 0x7L)));
    intel_scenario "vmptrld_test" (fun kvm ->
        ignore (setup kvm (golden ()));
        ignore (l1 kvm (Nf_hv.L1_op.Vmptrld 0x2000L)) (* never vmcleared *);
        ignore (l1 kvm (Nf_hv.L1_op.Vmptrld 0x3000L));
        ignore (l1 kvm Nf_hv.L1_op.Vmptrst));
    intel_scenario "vmwrite_vmread_test" (fun kvm ->
        ignore (setup kvm (golden ()));
        ignore (l1 kvm (Nf_hv.L1_op.Vmread (Field.encoding Field.guest_rip)));
        ignore (l1 kvm (Nf_hv.L1_op.Vmread 0xDEAD));
        ignore (l1 kvm (Nf_hv.L1_op.Vmwrite (Field.encoding Field.guest_rip, 0x1234L)));
        ignore (l1 kvm (Nf_hv.L1_op.Vmwrite (Field.encoding Field.exit_reason, 0L)))
        (* read-only *));
    intel_scenario "vmlaunch_basic_test" (fun kvm ->
        launch_and_run kvm (golden ()) [ Nf_cpu.Insn.Cpuid 0; Hlt; Vmcall ]);
    intel_scenario "vmresume_without_launch_test" (fun kvm ->
        ignore (l1 kvm (Nf_hv.L1_op.L1_insn (Nf_cpu.Insn.Mov_to_cr (4, Nf_stdext.Bits.set 0L Nf_x86.Cr4.vmxe))));
        ignore (l1 kvm (Nf_hv.L1_op.L1_insn (Nf_cpu.Insn.Wrmsr (Nf_x86.Msr.ia32_feature_control, 5L))));
        ignore (l1 kvm (Nf_hv.L1_op.Vmxon 0x3000L));
        ignore (l1 kvm (Nf_hv.L1_op.Vmclear 0x1000L));
        ignore (l1 kvm (Nf_hv.L1_op.Vmptrld 0x1000L));
        ignore (l1 kvm Nf_hv.L1_op.Vmresume));
    intel_scenario "double_launch_test" (fun kvm ->
        ignore (setup kvm (golden ()));
        ignore (l1 kvm Nf_hv.L1_op.Vmlaunch) (* launch of launched vmcs *));
    intel_scenario "invalid_entry_ctls_test" (entry_failure_test "ctl.entry_reserved");
    intel_scenario "cr3_target_count_test" (entry_failure_test "ctl.cr3_target_count");
    intel_scenario "vmcs_link_ptr_test" (entry_failure_test "guest.vmcs_link");
    intel_scenario "guest_rflags_test" (entry_failure_test "guest.rflags");
    intel_scenario "guest_activity_state_test" (entry_failure_test "guest.activity");
    intel_scenario "host_canonical_test" (entry_failure_test "host.canonical");
    intel_scenario "guest_tr_test" (entry_failure_test "guest.seg.tr");
    intel_scenario "msr_load_area_test" (fun kvm ->
        ignore (l1 kvm (Nf_hv.L1_op.Set_entry_msr_area [| (Nf_x86.Msr.ia32_pat, 0x0007040600070406L) |]));
        ignore (setup kvm (golden ())));
    intel_scenario "msr_load_noncanonical_test" (fun kvm ->
        ignore (l1 kvm (Nf_hv.L1_op.Set_entry_msr_area [| (Nf_x86.Msr.ia32_kernel_gs_base, 0x8000_0000_0000_0000L) |]));
        ignore (setup kvm (golden ())) (* entry failure, reason 34 *));
    intel_scenario "invept_test" (fun kvm ->
        ignore (setup kvm (golden ()));
        ignore (l1 kvm (Nf_hv.L1_op.Invept (1, 0x10_0000L)));
        ignore (l1 kvm (Nf_hv.L1_op.Invept (5, 0L))));
    intel_scenario "invvpid_test" (fun kvm ->
        ignore (setup kvm (golden ()));
        ignore (l1 kvm (Nf_hv.L1_op.Invvpid (1, 1L)));
        ignore (l1 kvm (Nf_hv.L1_op.Invvpid (8, 0L))));
    intel_scenario "nested_state_test" (fun kvm ->
        ignore (setup kvm (golden ()));
        Nf_kvm.Vmx_nested.host_ioctl kvm Nf_kvm.Vmx_nested.Get_nested_state);
    intel_scenario "activity_sanitize_test" (fun kvm ->
        (* KVM sanitizes SHUTDOWN to ACTIVE when building VMCS02; the
           consistency checks accept the value. *)
        let v = golden () in
        Vmcs.write v Field.guest_activity_state Field.Activity.shutdown;
        ignore (setup kvm v));
    intel_scenario "vmxoff_test" (fun kvm ->
        ignore (setup kvm (golden ()));
        ignore (l1 kvm Nf_hv.L1_op.Vmxoff);
        ignore (l1 kvm Nf_hv.L1_op.Vmxoff) (* #UD *));
  ]

(* --- AMD --- *)

let amd_scenario name f : scenario =
  {
    name = "svm_" ^ name;
    run =
      (fun () ->
        let kvm = fresh_kvm_amd () in
        f kvm;
        kvm.Nf_kvm.Svm_nested.cov);
  }

let amd_golden () = Nf_validator.Golden.vmcb amd_caps

let amd_witness id = (Nf_validator.Witness.find_svm id).svm_build amd_caps

let amd_l1 kvm op = Nf_kvm.Svm_nested.exec_l1 kvm op
let amd_setup kvm vmcb12 = svm_setup (amd_l1 kvm) vmcb12

let amd_launch_and_run kvm vmcb12 insns =
  if amd_setup kvm vmcb12 then
    l2_loop (Nf_kvm.Svm_nested.exec_l2 kvm) (amd_l1 kvm) (Nf_hv.L1_op.Vmrun 0x1000L)
      insns

let amd_vmrun_fail_test id kvm = ignore (amd_setup kvm (amd_witness id))

let amd_cases : scenario list =
  [
    amd_scenario "vmrun_basic_test" (fun kvm ->
        amd_launch_and_run kvm (amd_golden ()) [ Nf_cpu.Insn.Cpuid 0; Hlt ]);
    amd_scenario "vmrun_no_svme_test" (fun kvm ->
        ignore (amd_l1 kvm (Nf_hv.L1_op.Vmrun 0x1000L)));
    amd_scenario "vmrun_bad_address_test" (fun kvm ->
        ignore (amd_l1 kvm (Nf_hv.L1_op.Set_efer_svme true));
        ignore (amd_l1 kvm (Nf_hv.L1_op.Vmrun 0x1003L)));
    amd_scenario "asid_zero_test" (amd_vmrun_fail_test "svm.asid");
    amd_scenario "efer_reserved_test" (amd_vmrun_fail_test "svm.efer_reserved");
    amd_scenario "cr0_cd_nw_test" (amd_vmrun_fail_test "svm.cr0_cd_nw");
    amd_scenario "cr4_reserved_test" (amd_vmrun_fail_test "svm.cr4_reserved");
    amd_scenario "cr3_mbz_test" (amd_vmrun_fail_test "svm.cr3_mbz");
    amd_scenario "dr7_high_test" (amd_vmrun_fail_test "svm.dr7_high");
    amd_scenario "vmrun_intercept_test" (amd_vmrun_fail_test "svm.vmrun_intercept");
    amd_scenario "long_mode_pae_test" (amd_vmrun_fail_test "svm.long_mode_pae");
    amd_scenario "cs_l_d_test" (amd_vmrun_fail_test "svm.long_mode_cs");
    amd_scenario "eventinj_test" (amd_vmrun_fail_test "svm.event_inj");
    amd_scenario "vmload_vmsave_test" (fun kvm ->
        ignore (amd_l1 kvm (Nf_hv.L1_op.Set_efer_svme true));
        ignore (amd_l1 kvm Nf_hv.L1_op.Vmload);
        ignore (amd_l1 kvm Nf_hv.L1_op.Vmsave));
    amd_scenario "stgi_clgi_test" (fun kvm ->
        ignore (amd_l1 kvm (Nf_hv.L1_op.Set_efer_svme true));
        ignore (amd_l1 kvm Nf_hv.L1_op.Clgi);
        ignore (amd_l1 kvm Nf_hv.L1_op.Stgi));
    amd_scenario "svm_insn_no_svme_test" (fun kvm ->
        ignore (amd_l1 kvm Nf_hv.L1_op.Vmload);
        ignore (amd_l1 kvm Nf_hv.L1_op.Stgi);
        ignore (amd_l1 kvm Nf_hv.L1_op.Invlpga));
    amd_scenario "invlpga_test" (fun kvm ->
        ignore (amd_l1 kvm (Nf_hv.L1_op.Set_efer_svme true));
        ignore (amd_l1 kvm Nf_hv.L1_op.Invlpga));
    amd_scenario "exit_sweep_test" (fun kvm ->
        amd_launch_and_run kvm (amd_golden ())
          [ Nf_cpu.Insn.Rdtsc; Io_in 0x40; Rdmsr Nf_x86.Msr.ia32_efer;
            Pause; Invlpg 0x1000L; Mov_to_cr (0, 0x11L) ]);
    amd_scenario "npf_reflect_test" (fun kvm ->
        amd_launch_and_run kvm (amd_golden ()) (List.init 8 (fun _ -> Nf_cpu.Insn.Nop)));
    amd_scenario "nested_state_test" (fun kvm ->
        ignore (amd_setup kvm (amd_golden ()));
        Nf_kvm.Svm_nested.host_ioctl kvm Nf_kvm.Svm_nested.Get_nested_state;
        Nf_kvm.Svm_nested.host_ioctl kvm Nf_kvm.Svm_nested.Set_nested_state);
  ]

(* The real suite runs 60 cases in ~80 seconds. *)
let runtime_hours = 80.0 /. 3600.0

let run_intel ~duration_hours =
  fst (run_suite ~label:"Selftests" ~runtime_hours ~duration_hours intel_cases)

let run_amd ~duration_hours =
  fst (run_suite ~label:"Selftests" ~runtime_hours ~duration_hours amd_cases)

let case_count = List.length intel_cases + List.length amd_cases
