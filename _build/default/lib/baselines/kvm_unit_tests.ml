(** Behavioural model of KVM-unit-tests: a minimal guest OS running 84
    deterministic unit tests against KVM in about 20 minutes (§5.2).

    Unlike the selftests it is guest-only (no ioctl access) and runs
    under the default configuration, but its vmx tests systematically
    probe VM-entry failure conditions — which is why it reaches more
    check-failure branches than Syzkaller while still missing the
    feature-dependent merge paths. *)

module Cov = Nf_coverage.Coverage
open Suite_util

(* The entry-failure conditions vmx_tests.c exercises (a large, but not
   complete, subset of the architectural checks). *)
let vmx_checked_ids =
  [
    "ctl.pin_reserved"; "ctl.proc_reserved"; "ctl.proc2_reserved";
    "ctl.exit_reserved"; "ctl.entry_reserved"; "ctl.cr3_target_count";
    "ctl.io_bitmaps"; "ctl.msr_bitmap"; "ctl.tpr_shadow";
    "ctl.nmi"; "ctl.nmi_window"; "ctl.vpid_nonzero"; "ctl.eptp_valid";
    "ctl.unrestricted_requires_ept"; "ctl.pml"; "ctl.apic_access_align";
    "ctl.exit_msr_areas"; "ctl.entry_msr_area"; "ctl.entry_intr_info";
    "host.cr0_fixed"; "host.cr4_fixed"; "host.canonical"; "host.selectors";
    "host.efer"; "host.pat";
    "guest.cr0_fixed"; "guest.cr4_fixed"; "guest.ia32e_pg";
    "guest.cr3_width"; "guest.debugctl"; "guest.sysenter_canonical";
    "guest.pat"; "guest.efer"; "guest.rflags"; "guest.activity";
    "guest.interruptibility"; "guest.pending_dbg"; "guest.vmcs_link";
    "guest.gdtr_idtr"; "guest.rip"; "guest.seg.cs"; "guest.seg.ss";
    "guest.seg.ds"; "guest.seg.es"; "guest.seg.fs"; "guest.seg.gs";
    "guest.seg.tr"; "guest.seg.ldtr"; "guest.rflags_vm";
    "guest.rflags_if_injection"; "guest.legacy_pcide"; "guest.cr0_pg_pe";
    "guest.dr7_high"; "guest.bndcfgs"; "guest.activity_hlt_dpl";
    "guest.activity_sipi_injection"; "guest.pdpte"; "guest.ia32e_pg";
    "host.cr3_width"; "host.addr_space"; "host.perf_global";
    "ctl.x2apic_conflict"; "ctl.vid_requires_ext_intr"; "ctl.smm";
    "ctl.preemption_timer_save"; "ctl.vmfunc_requires_ept";
  ]

let entry_failure_case id : scenario =
  {
    name = "vmx_test_" ^ id;
    run =
      (fun () ->
        let kvm = fresh_kvm_intel () in
        let vmcs12 = (Nf_validator.Witness.find_vmx id).build intel_caps in
        ignore (vmx_setup (Nf_kvm.Vmx_nested.exec_l1 kvm) vmcs12);
        kvm.Nf_kvm.Vmx_nested.cov);
  }

let simple name f : scenario =
  {
    name;
    run =
      (fun () ->
        let kvm = fresh_kvm_intel () in
        f kvm;
        kvm.Nf_kvm.Vmx_nested.cov);
  }

let l1 kvm op = Nf_kvm.Vmx_nested.exec_l1 kvm op

let launch kvm insns =
  let vmcs12 = Nf_validator.Golden.vmcs intel_caps in
  if vmx_setup (l1 kvm) vmcs12 then
    l2_loop (Nf_kvm.Vmx_nested.exec_l2 kvm) (l1 kvm) Nf_hv.L1_op.Vmresume insns

let misc_cases : scenario list =
  [
    simple "vmx_basic" (fun kvm -> launch kvm [ Nf_cpu.Insn.Vmcall ]);
    simple "vmenter" (fun kvm ->
        launch kvm [ Nf_cpu.Insn.Cpuid 0 ];
        ignore (l1 kvm Nf_hv.L1_op.Vmlaunch) (* launched: VMfail *));
    simple "vmx_instruction_errors" (fun kvm ->
        ignore (l1 kvm (Nf_hv.L1_op.L1_insn (Nf_cpu.Insn.Mov_to_cr (4, Nf_stdext.Bits.set 0L Nf_x86.Cr4.vmxe))));
        ignore (l1 kvm (Nf_hv.L1_op.L1_insn (Nf_cpu.Insn.Wrmsr (Nf_x86.Msr.ia32_feature_control, 5L))));
        ignore (l1 kvm (Nf_hv.L1_op.Vmxon 0x3000L));
        ignore (l1 kvm (Nf_hv.L1_op.Vmclear 0x3000L));
        ignore (l1 kvm (Nf_hv.L1_op.Vmptrld 0x3000L));
        ignore (l1 kvm (Nf_hv.L1_op.Vmread 0xBEEF));
        ignore (l1 kvm Nf_hv.L1_op.Vmresume));
    simple "vmx_exit_cpuid" (fun kvm -> launch kvm [ Nf_cpu.Insn.Cpuid 1; Cpuid 7 ]);
    simple "vmx_exit_hlt" (fun kvm -> launch kvm [ Nf_cpu.Insn.Hlt ]);
    simple "vmx_exit_io" (fun kvm ->
        launch kvm [ Nf_cpu.Insn.Io_in 0x70; Io_out (0x70, 1) ]);
    simple "vmx_exit_msr" (fun kvm ->
        launch kvm
          [ Nf_cpu.Insn.Rdmsr Nf_x86.Msr.ia32_tsc;
            Wrmsr (Nf_x86.Msr.ia32_sysenter_cs, 0x10L) ]);
    simple "vmx_exit_cr" (fun kvm ->
        launch kvm [ Nf_cpu.Insn.Mov_to_cr (3, 0x5000L); Mov_from_cr 3 ]);
    simple "vmx_exit_dr" (fun kvm -> launch kvm [ Nf_cpu.Insn.Mov_dr 7 ]);
    simple "vmx_exit_rdtsc" (fun kvm -> launch kvm [ Nf_cpu.Insn.Rdtsc; Rdtscp ]);
    simple "vmx_exit_misc" (fun kvm ->
        launch kvm [ Nf_cpu.Insn.Invd; Wbinvd; Xsetbv 3L; Pause; Rdpmc ]);
    simple "vmx_exit_vmx_insn" (fun kvm ->
        launch kvm
          [ Nf_cpu.Insn.Vmx_in_guest "vmxon"; Vmx_in_guest "vmclear";
            Vmx_in_guest "vmwrite"; Vmx_in_guest "vmxoff";
            Vmx_in_guest "invept"; Vmx_in_guest "invvpid" ]);
    simple "vmx_exception_bitmap" (fun kvm ->
        let vmcs12 = Nf_validator.Golden.vmcs intel_caps in
        Nf_vmcs.Vmcs.write vmcs12 Nf_vmcs.Field.exception_bitmap 0xFFFF_FFFFL;
        if vmx_setup (l1 kvm) vmcs12 then
          l2_loop (Nf_kvm.Vmx_nested.exec_l2 kvm) (l1 kvm) Nf_hv.L1_op.Vmresume
            [ Nf_cpu.Insn.Ud2; Soft_int 13 ]);
    simple "vmx_event_injection" (fun kvm ->
        let vmcs12 = Nf_validator.Golden.vmcs intel_caps in
        Nf_vmcs.Vmcs.write vmcs12 Nf_vmcs.Field.entry_intr_info
          (Nf_x86.Exn.Intr_info.make ~typ:Nf_x86.Exn.Intr_info.type_hw_exception
             ~deliver_ec:true ~vector:Nf_x86.Exn.gp ());
        Nf_vmcs.Vmcs.write vmcs12 Nf_vmcs.Field.entry_exception_error_code 0L;
        ignore (vmx_setup (l1 kvm) vmcs12));
    simple "vmx_msr_load" (fun kvm ->
        ignore
          (l1 kvm
             (Nf_hv.L1_op.Set_entry_msr_area
                [| (Nf_x86.Msr.ia32_lstar, 0xFFFF_8000_1234_0000L) |]));
        launch kvm [ Nf_cpu.Insn.Cpuid 0 ]);
    simple "vmx_msr_load_fail" (fun kvm ->
        ignore
          (l1 kvm
             (Nf_hv.L1_op.Set_entry_msr_area
                [| (Nf_x86.Msr.ia32_lstar, 0x8000_0000_0000_0000L) |]));
        launch kvm []);
    simple "vmx_preemption_timer" (fun kvm ->
        let vmcs12 = Nf_validator.Golden.vmcs intel_caps in
        Nf_vmcs.Vmcs.set_bit vmcs12 Nf_vmcs.Field.pin_based_ctls
          Nf_vmcs.Controls.Pin.preemption_timer true;
        if vmx_setup (l1 kvm) vmcs12 then
          l2_loop (Nf_kvm.Vmx_nested.exec_l2 kvm) (l1 kvm) Nf_hv.L1_op.Vmresume
            (List.init 20 (fun _ -> Nf_cpu.Insn.Nop)));
    simple "vmx_ept_access" (fun kvm ->
        launch kvm (List.init 10 (fun _ -> Nf_cpu.Insn.Nop)));
    simple "vmx_cr_shadowing" (fun kvm ->
        let vmcs12 = Nf_validator.Golden.vmcs intel_caps in
        Nf_vmcs.Vmcs.write vmcs12 Nf_vmcs.Field.cr0_guest_host_mask (-1L);
        Nf_vmcs.Vmcs.write vmcs12 Nf_vmcs.Field.cr4_guest_host_mask (-1L);
        if vmx_setup (l1 kvm) vmcs12 then
          l2_loop (Nf_kvm.Vmx_nested.exec_l2 kvm) (l1 kvm) Nf_hv.L1_op.Vmresume
            [ Nf_cpu.Insn.Mov_to_cr (0, 0x11L); Mov_to_cr (4, 0L) ]);
    simple "vmx_capability_msrs" (fun kvm ->
        List.iter
          (fun m -> ignore (l1 kvm (Nf_hv.L1_op.L1_insn (Nf_cpu.Insn.Rdmsr m))))
          [ Nf_x86.Msr.ia32_vmx_basic; Nf_x86.Msr.ia32_vmx_pinbased_ctls;
            Nf_x86.Msr.ia32_vmx_procbased_ctls; Nf_x86.Msr.ia32_vmx_ept_vpid_cap;
            Nf_x86.Msr.ia32_vmx_misc ]);
    simple "vmx_apicv" (fun kvm ->
        let vmcs12 = Nf_validator.Golden.vmcs intel_caps in
        Nf_vmcs.Vmcs.set_bit vmcs12 Nf_vmcs.Field.proc_based_ctls
          Nf_vmcs.Controls.Proc.use_tpr_shadow true;
        Nf_vmcs.Vmcs.write vmcs12 Nf_vmcs.Field.virtual_apic_page_addr 0x15000L;
        Nf_vmcs.Vmcs.set_bit vmcs12 Nf_vmcs.Field.pin_based_ctls
          Nf_vmcs.Controls.Pin.external_interrupt_exiting true;
        Nf_vmcs.Vmcs.set_bit vmcs12 Nf_vmcs.Field.proc_based_ctls2
          Nf_vmcs.Controls.Proc2.virtual_interrupt_delivery true;
        ignore (vmx_setup (l1 kvm) vmcs12));
    simple "vmx_io_bitmaps" (fun kvm ->
        let vmcs12 = Nf_validator.Golden.vmcs intel_caps in
        Nf_vmcs.Vmcs.set_bit vmcs12 Nf_vmcs.Field.proc_based_ctls
          Nf_vmcs.Controls.Proc.use_io_bitmaps true;
        Nf_vmcs.Vmcs.write vmcs12 Nf_vmcs.Field.io_bitmap_a 0x17000L;
        Nf_vmcs.Vmcs.write vmcs12 Nf_vmcs.Field.io_bitmap_b 0x18000L;
        if vmx_setup (l1 kvm) vmcs12 then
          l2_loop (Nf_kvm.Vmx_nested.exec_l2 kvm) (l1 kvm) Nf_hv.L1_op.Vmresume
            [ Nf_cpu.Insn.Io_in 0x21; Io_out (0x21, 0xFF); Io_in 0xC000 ]);
    simple "vmx_pml" (fun kvm ->
        let vmcs12 = Nf_validator.Golden.vmcs intel_caps in
        Nf_vmcs.Vmcs.set_bit vmcs12 Nf_vmcs.Field.proc_based_ctls2
          Nf_vmcs.Controls.Proc2.enable_pml true;
        Nf_vmcs.Vmcs.write vmcs12 (Nf_vmcs.Field.find_exn "PML_ADDRESS") 0x19000L;
        ignore (vmx_setup (l1 kvm) vmcs12));
    simple "vmx_tsc_scaling" (fun kvm ->
        let vmcs12 = Nf_validator.Golden.vmcs intel_caps in
        Nf_vmcs.Vmcs.set_bit vmcs12 Nf_vmcs.Field.proc_based_ctls2
          Nf_vmcs.Controls.Proc2.use_tsc_scaling true;
        Nf_vmcs.Vmcs.write vmcs12 (Nf_vmcs.Field.find_exn "TSC_MULTIPLIER") 2L;
        ignore (vmx_setup (l1 kvm) vmcs12));
    simple "vmx_shadow_vmcs" (fun kvm ->
        let vmcs12 = Nf_validator.Golden.vmcs intel_caps in
        Nf_vmcs.Vmcs.set_bit vmcs12 Nf_vmcs.Field.proc_based_ctls2
          Nf_vmcs.Controls.Proc2.vmcs_shadowing true;
        Nf_vmcs.Vmcs.write vmcs12 Nf_vmcs.Field.vmcs_link_pointer 0x1A000L;
        ignore (vmx_setup (l1 kvm) vmcs12));
    simple "vmx_unrestricted_guest" (fun kvm ->
        let vmcs12 = Nf_validator.Golden.vmcs intel_caps in
        Nf_vmcs.Vmcs.set_bit vmcs12 Nf_vmcs.Field.proc_based_ctls2
          Nf_vmcs.Controls.Proc2.unrestricted_guest true;
        ignore (vmx_setup (l1 kvm) vmcs12));
    simple "vmx_invept_invvpid" (fun kvm ->
        ignore (vmx_setup (l1 kvm) (Nf_validator.Golden.vmcs intel_caps));
        ignore (l1 kvm (Nf_hv.L1_op.Invept (1, 0x10_0000L)));
        ignore (l1 kvm (Nf_hv.L1_op.Invept (6, 0L)));
        ignore (l1 kvm (Nf_hv.L1_op.Invvpid (2, 1L)));
        ignore (l1 kvm (Nf_hv.L1_op.Invvpid (7, 0L))));
    simple "vmx_vmxoff" (fun kvm ->
        ignore (vmx_setup (l1 kvm) (Nf_validator.Golden.vmcs intel_caps));
        ignore (l1 kvm Nf_hv.L1_op.Vmptrst);
        ignore (l1 kvm Nf_hv.L1_op.Vmxoff);
        ignore (l1 kvm Nf_hv.L1_op.Vmxoff));
    simple "vmx_vmread_vmwrite" (fun kvm ->
        ignore (vmx_setup (l1 kvm) (Nf_validator.Golden.vmcs intel_caps));
        List.iter
          (fun f ->
            ignore (l1 kvm (Nf_hv.L1_op.Vmread (Nf_vmcs.Field.encoding f))))
          [ Nf_vmcs.Field.exit_reason; Nf_vmcs.Field.guest_rip;
            Nf_vmcs.Field.guest_rsp ]);
  ]

(* AMD side of the suite (svm.flat): fewer but analogous tests. *)
let svm_checked_ids =
  [ "svm.efer_svme"; "svm.efer_reserved"; "svm.cr0_cd_nw"; "svm.cr0_high";
    "svm.cr4_reserved"; "svm.dr6_high"; "svm.dr7_high"; "svm.asid";
    "svm.vmrun_intercept"; "svm.long_mode_pae"; "svm.long_mode_pe";
    "svm.long_mode_cs"; "svm.event_inj"; "svm.ncr3_mbz"; "svm.iopm_mbz";
    "svm.msrpm_mbz"; "svm.rflags_reserved" ]

let svm_case id : scenario =
  {
    name = "svm_test_" ^ id;
    run =
      (fun () ->
        let kvm = fresh_kvm_amd () in
        let vmcb12 = (Nf_validator.Witness.find_svm id).svm_build amd_caps in
        ignore (svm_setup (Nf_kvm.Svm_nested.exec_l1 kvm) vmcb12);
        kvm.Nf_kvm.Svm_nested.cov);
  }

let svm_simple name f : scenario =
  {
    name;
    run =
      (fun () ->
        let kvm = fresh_kvm_amd () in
        f kvm;
        kvm.Nf_kvm.Svm_nested.cov);
  }

let svm_launch kvm insns =
  let vmcb12 = Nf_validator.Golden.vmcb amd_caps in
  if svm_setup (Nf_kvm.Svm_nested.exec_l1 kvm) vmcb12 then
    l2_loop (Nf_kvm.Svm_nested.exec_l2 kvm)
      (Nf_kvm.Svm_nested.exec_l1 kvm)
      (Nf_hv.L1_op.Vmrun 0x1000L) insns

let svm_misc : scenario list =
  [
    svm_simple "svm_basic" (fun kvm -> svm_launch kvm [ Nf_cpu.Insn.Cpuid 0 ]);
    svm_simple "svm_exits" (fun kvm ->
        svm_launch kvm
          [ Nf_cpu.Insn.Hlt; Rdtsc; Io_in 0x40; Rdmsr Nf_x86.Msr.ia32_efer;
            Pause; Mov_to_cr (0, 0x11L); Xsetbv 3L; Wbinvd; Monitor; Mwait;
            Rdpmc; Invlpg 0x1000L; Vmcall; Mov_to_cr (3, 0x4000L);
            Mov_to_cr (4, 0x20L) ]);
    svm_simple "svm_insns" (fun kvm ->
        ignore (Nf_kvm.Svm_nested.exec_l1 kvm (Nf_hv.L1_op.Set_efer_svme true));
        ignore (Nf_kvm.Svm_nested.exec_l1 kvm Nf_hv.L1_op.Vmload);
        ignore (Nf_kvm.Svm_nested.exec_l1 kvm Nf_hv.L1_op.Vmsave);
        ignore (Nf_kvm.Svm_nested.exec_l1 kvm Nf_hv.L1_op.Clgi);
        ignore (Nf_kvm.Svm_nested.exec_l1 kvm Nf_hv.L1_op.Stgi);
        ignore (Nf_kvm.Svm_nested.exec_l1 kvm Nf_hv.L1_op.Invlpga));
    svm_simple "svm_l2_svm_insns" (fun kvm ->
        svm_launch kvm
          [ Nf_cpu.Insn.Vmx_in_guest "vmrun"; Vmx_in_guest "vmmcall";
            Vmx_in_guest "vmload"; Vmx_in_guest "vmsave" ]);
    svm_simple "svm_npf" (fun kvm ->
        svm_launch kvm (List.init 8 (fun _ -> Nf_cpu.Insn.Nop)));
  ]

let intel_cases =
  List.map entry_failure_case vmx_checked_ids @ misc_cases

let amd_cases = List.map svm_case svm_checked_ids @ svm_misc

let case_count = List.length intel_cases + List.length amd_cases

(* 84 cases in about 20 minutes. *)
let runtime_hours = 20.0 /. 60.0

let run_intel ~duration_hours =
  fst
    (run_suite ~label:"KVM-unit-tests" ~runtime_hours ~duration_hours intel_cases)

let run_amd ~duration_hours =
  fst (run_suite ~label:"KVM-unit-tests" ~runtime_hours ~duration_hours amd_cases)
