(** Behavioural model of the Xen Test Framework (XTF): a small set of
    deterministic micro-VM tests.  XTF has only smoke-level nested-HVM
    coverage, which is why Table 4 shows it in the 10–20% range. *)

module Cov = Nf_coverage.Coverage
open Suite_util

let intel_case name f : scenario =
  {
    name = "xtf_" ^ name;
    run =
      (fun () ->
        let xen = fresh_xen_intel () in
        f xen;
        xen.Nf_xen.Vmx_nested.cov);
  }

let l1 xen op = Nf_xen.Vmx_nested.exec_l1 xen op

let intel_cases : scenario list =
  [
    intel_case "test-hvm64-vmxon" (fun xen ->
        ignore (l1 xen (Nf_hv.L1_op.L1_insn (Nf_cpu.Insn.Mov_to_cr (4, Nf_stdext.Bits.set 0L Nf_x86.Cr4.vmxe))));
        ignore (l1 xen (Nf_hv.L1_op.Vmxon 0x3000L));
        ignore (l1 xen (Nf_hv.L1_op.Vmxon 0x3000L)));
    intel_case "test-hvm64-vmclear" (fun xen ->
        ignore (l1 xen (Nf_hv.L1_op.L1_insn (Nf_cpu.Insn.Mov_to_cr (4, Nf_stdext.Bits.set 0L Nf_x86.Cr4.vmxe))));
        ignore (l1 xen (Nf_hv.L1_op.Vmxon 0x3000L));
        ignore (l1 xen (Nf_hv.L1_op.Vmclear 0x1000L));
        ignore (l1 xen (Nf_hv.L1_op.Vmclear 0x7L)));
    intel_case "test-hvm64-vmptrld" (fun xen ->
        ignore (l1 xen (Nf_hv.L1_op.L1_insn (Nf_cpu.Insn.Mov_to_cr (4, Nf_stdext.Bits.set 0L Nf_x86.Cr4.vmxe))));
        ignore (l1 xen (Nf_hv.L1_op.Vmxon 0x3000L));
        ignore (l1 xen (Nf_hv.L1_op.Vmclear 0x1000L));
        ignore (l1 xen (Nf_hv.L1_op.Vmptrld 0x1000L));
        ignore (l1 xen (Nf_hv.L1_op.Vmread (Nf_vmcs.Field.encoding Nf_vmcs.Field.guest_rip))));
    intel_case "test-hvm64-vvmx-insns" (fun xen ->
        ignore (l1 xen (Nf_hv.L1_op.L1_insn (Nf_cpu.Insn.Mov_to_cr (4, Nf_stdext.Bits.set 0L Nf_x86.Cr4.vmxe))));
        ignore (l1 xen (Nf_hv.L1_op.Vmxon 0x3000L));
        ignore (l1 xen (Nf_hv.L1_op.Vmclear 0x1000L));
        ignore (l1 xen (Nf_hv.L1_op.Vmptrld 0x1000L));
        ignore (l1 xen (Nf_hv.L1_op.Vmwrite (Nf_vmcs.Field.encoding Nf_vmcs.Field.guest_rip, 0x1000L)));
        ignore (l1 xen (Nf_hv.L1_op.Vmwrite (0xBEEF, 0L)));
        ignore (l1 xen (Nf_hv.L1_op.Vmread 0xBEEF));
        ignore (l1 xen Nf_hv.L1_op.Vmptrst);
        ignore (l1 xen (Nf_hv.L1_op.Invept (1, 0L)));
        ignore (l1 xen (Nf_hv.L1_op.Invvpid (1, 1L)));
        ignore (l1 xen Nf_hv.L1_op.Vmxoff));
    intel_case "test-hvm64-msr" (fun xen ->
        List.iter
          (fun m -> ignore (l1 xen (Nf_hv.L1_op.L1_insn (Nf_cpu.Insn.Rdmsr m))))
          [ Nf_x86.Msr.ia32_vmx_basic; Nf_x86.Msr.ia32_vmx_procbased_ctls ]);
  ]

let amd_case name f : scenario =
  {
    name = "xtf_" ^ name;
    run =
      (fun () ->
        let xen = fresh_xen_amd () in
        f xen;
        xen.Nf_xen.Svm_nested.cov);
  }

let amd_cases : scenario list =
  [
    amd_case "test-hvm64-svm-ud" (fun xen ->
        ignore (Nf_xen.Svm_nested.exec_l1 xen (Nf_hv.L1_op.Vmrun 0x1000L)));
    amd_case "test-hvm64-svm-insns" (fun xen ->
        ignore (Nf_xen.Svm_nested.exec_l1 xen (Nf_hv.L1_op.Set_efer_svme true));
        ignore (Nf_xen.Svm_nested.exec_l1 xen (Nf_hv.L1_op.Vmrun 0x1003L));
        ignore (Nf_xen.Svm_nested.exec_l1 xen Nf_hv.L1_op.Vmload);
        ignore (Nf_xen.Svm_nested.exec_l1 xen Nf_hv.L1_op.Vmsave));
  ]

let runtime_hours = 5.0 /. 60.0

let run_intel ~duration_hours =
  fst (run_suite ~label:"XTF" ~runtime_hours ~duration_hours intel_cases)

let run_amd ~duration_hours =
  fst (run_suite ~label:"XTF" ~runtime_hours ~duration_hours amd_cases)
