(** Behavioural model of KVM-unit-tests: a minimal guest OS running ~84
    deterministic unit tests in about 20 minutes.  Guest-only (no
    ioctls), default configuration, but systematic about VM-entry
    failure conditions — why it out-covers Syzkaller yet misses the
    feature-dependent paths. *)

val intel_cases : Suite_util.scenario list
val amd_cases : Suite_util.scenario list
val case_count : int

val run_intel : duration_hours:float -> Baseline.run_result
val run_amd : duration_hours:float -> Baseline.run_result
