(** Shared result shape for the comparison tools of §5.1. *)

module Cov = Nf_coverage.Coverage

type run_result = {
  label : string;
  coverage : Cov.Map.t;
  timeline : (float * float) list; (* (virtual hours, coverage %) *)
  execs : int;
}

let timeline_of ~hours ~at coverage_pct =
  (* A tool that saturates at [at] hours and stays flat. *)
  let rec go t acc =
    if t > hours then List.rev acc
    else go (t +. 1.0) ((t, coverage_pct) :: acc)
  in
  (0.0, 0.0) :: (at, coverage_pct) :: go (Float.of_int (int_of_float at + 1)) []
