(** Behavioural model of the Xen Test Framework: smoke-level nested-HVM
    micro-VM tests (the 10–20% rows of Table 4). *)

val run_intel : duration_hours:float -> Baseline.run_result
val run_amd : duration_hours:float -> Baseline.run_result
