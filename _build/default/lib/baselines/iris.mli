(** Behavioural model of IRIS (DSN'23): record-and-replay of traces from
    well-behaved guests — always-valid VM states (its coverage saturates
    within minutes) — and unstable when run inside an L1 VM: in the
    paper's nested setup it crashed after a few minutes, so coverage is
    reported at the point of termination.  Intel only. *)

val run_intel : seed:int -> duration_hours:float -> Baseline.run_result
