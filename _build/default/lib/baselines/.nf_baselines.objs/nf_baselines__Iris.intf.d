lib/baselines/iris.mli: Baseline
