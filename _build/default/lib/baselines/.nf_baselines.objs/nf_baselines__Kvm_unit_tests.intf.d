lib/baselines/kvm_unit_tests.mli: Baseline Suite_util
