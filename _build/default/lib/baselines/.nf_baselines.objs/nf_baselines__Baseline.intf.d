lib/baselines/baseline.mli: Nf_coverage
