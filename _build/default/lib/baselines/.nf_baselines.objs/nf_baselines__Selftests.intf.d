lib/baselines/selftests.mli: Baseline Suite_util
