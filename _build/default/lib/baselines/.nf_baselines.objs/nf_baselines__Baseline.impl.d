lib/baselines/baseline.ml: Float List Nf_coverage
