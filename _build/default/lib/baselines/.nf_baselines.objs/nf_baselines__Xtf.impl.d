lib/baselines/xtf.ml: List Nf_coverage Nf_cpu Nf_hv Nf_stdext Nf_vmcs Nf_x86 Nf_xen Suite_util
