lib/baselines/iris.ml: Array Baseline Field Int64 List Nf_coverage Nf_cpu Nf_harness Nf_hv Nf_kvm Nf_sanitizer Nf_stdext Nf_validator Nf_vmcs Nf_x86 Vmcs
