lib/baselines/syzkaller.mli: Baseline
