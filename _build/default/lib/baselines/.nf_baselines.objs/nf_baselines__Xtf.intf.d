lib/baselines/xtf.mli: Baseline
