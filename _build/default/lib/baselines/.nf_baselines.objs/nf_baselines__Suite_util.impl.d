lib/baselines/suite_util.ml: Baseline List Nf_coverage Nf_cpu Nf_harness Nf_hv Nf_kvm Nf_sanitizer Nf_xen
