lib/baselines/selftests.ml: Field List Nf_coverage Nf_cpu Nf_hv Nf_kvm Nf_stdext Nf_validator Nf_vmcs Nf_x86 Suite_util Vmcs
