lib/baselines/syzkaller.ml: Array Baseline Field List Nf_coverage Nf_cpu Nf_harness Nf_hv Nf_kvm Nf_sanitizer Nf_stdext Nf_validator Nf_vmcs Nf_x86 Vmcs
