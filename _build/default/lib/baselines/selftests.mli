(** Behavioural model of the Linux kernel KVM selftests: ~60
    deterministic ioctl-driven test programs finishing in about 80
    seconds.  The one baseline that exercises the host-side nested state
    save/restore interface — the source of the "Selftests − NecoFuzz"
    rows of Table 2. *)

val intel_cases : Suite_util.scenario list
val amd_cases : Suite_util.scenario list
val case_count : int

val run_intel : duration_hours:float -> Baseline.run_result
val run_amd : duration_hours:float -> Baseline.run_result
