lib/vmcb/vmcb.ml: Array Hashtbl Int64 List Nf_stdext Nf_x86 Printf
