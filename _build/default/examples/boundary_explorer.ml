(* Use the VM state validator standalone: generate boundary states,
   check them against the hardware oracle, and print the Fig. 5-style
   Hamming statistics — the paper's §5.3.2 experiment in miniature.

     dune exec examples/boundary_explorer.exe *)

let () =
  let caps = Nf_cpu.Vmx_caps.alder_lake in
  let validator = Necofuzz.Validator.create caps in
  let rng = Nf_stdext.Rng.create 2026 in
  (* Generate a batch of boundary states and classify them on the CPU
     oracle. *)
  let entered = ref 0 and ctl = ref 0 and host = ref 0 and guest = ref 0 in
  let n = 5000 in
  for _ = 1 to n do
    let vmcs = Necofuzz.Distribution.random_vmcs rng in
    Necofuzz.Validator.round validator vmcs;
    ignore (Necofuzz.Mutation.mutate (Necofuzz.Mutation.of_rng rng) vmcs);
    match Nf_cpu.Vmx_cpu.enter ~caps vmcs with
    | Nf_cpu.Vmx_cpu.Entered _ -> incr entered
    | Vmfail_control _ -> incr ctl
    | Vmfail_host _ -> incr host
    | Entry_fail_guest _ | Entry_fail_msr_load _ -> incr guest
  done;
  Format.printf "boundary states over %d samples:@." n;
  Format.printf "  entered:                %5d (%.1f%%)@." !entered
    (100.0 *. float_of_int !entered /. float_of_int n);
  Format.printf "  invalid controls:       %5d@." !ctl;
  Format.printf "  invalid host state:     %5d@." !host;
  Format.printf "  invalid guest state:    %5d@." !guest;
  (* The validator's self-correction loop: the spec says IA-32e requires
     CR4.PAE; the silicon silently forgives it.  The oracle comparison
     teaches the validator. *)
  let witness = (Necofuzz.Witness.find_vmx "guest.ia32e_pae").build caps in
  (match Necofuzz.Validator.self_check validator witness with
  | Necofuzz.Validator.Model_too_strict id ->
      Format.printf
        "self-check: model was too strict — hardware accepts states \
         violating %S; learned as a skip.@."
        id
  | Agree -> Format.printf "self-check: model agrees with hardware.@."
  | Model_too_lax id ->
      Format.printf "self-check: model too lax on %S (validator bug!)@." id);
  Format.printf "learned skips: [%s]@."
    (String.concat "; " validator.learned_skips);
  (* Fig. 5 distributions at small scale. *)
  List.iter
    (fun d -> Format.printf "%a@." Necofuzz.Distribution.pp_summary d)
    [
      Necofuzz.Distribution.random_vs_validated ~caps ~samples:1000 ~seed:1;
      Necofuzz.Distribution.default_vs_validated ~caps ~samples:1000 ~seed:2;
      Necofuzz.Distribution.pairwise ~caps ~samples:1000 ~seed:3;
    ]
