(* Fuzz the simulated Xen hypervisor on both vendors, with a component
   ablation on the side, and show the watchdog at work: the Intel
   campaign triggers the activity-state host hang (Xen bug, fix [11] in
   the paper), after which fuzzing continues through automatic restarts.

     dune exec examples/xen_campaign.exe *)

let run_one label cfg =
  let r = Necofuzz.run cfg in
  Format.printf "%-28s coverage %5.1f%%  execs %6d  restarts %3d  crashes %d@."
    label (Necofuzz.coverage_pct r) r.execs r.restarts
    (List.length r.crashes);
  r

let () =
  Format.printf "Xen guest config:@.%s@.@."
    (Necofuzz.Vcpu_config.Xen_adapter.guest_cfg Nf_cpu.Features.default);
  let intel =
    run_one "Xen/Intel (full)"
      (Necofuzz.campaign ~target:Necofuzz.Xen_intel ~hours:8.0 ())
  in
  let _amd =
    run_one "Xen/AMD (full)"
      (Necofuzz.campaign ~target:Necofuzz.Xen_amd ~hours:8.0 ())
  in
  (* Ablation: disable the VM state validator and watch coverage drop. *)
  let no_validator =
    { Necofuzz.Executor.full_ablation with generation = Necofuzz.Executor.Template }
  in
  let _ =
    run_one "Xen/Intel (w/o validator)"
      (Necofuzz.campaign ~target:Necofuzz.Xen_intel ~hours:8.0
         ~ablation:no_validator ())
  in
  Format.printf "@.crash reports from the full Intel campaign:@.";
  List.iter (fun c -> Format.printf "  %a@." Necofuzz.pp_crash c) intel.crashes
