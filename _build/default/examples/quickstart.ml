(* Quickstart: fuzz the simulated KVM/Intel hypervisor for a short
   campaign and report what happened.

     dune exec examples/quickstart.exe *)

let () =
  Format.printf "NecoFuzz quickstart: fuzzing %s for 4 virtual hours...@."
    (Necofuzz.Agent.target_name Necofuzz.Kvm_intel);
  let cfg = Necofuzz.campaign ~target:Necofuzz.Kvm_intel ~hours:4.0 () in
  let result = Necofuzz.run cfg in
  Format.printf "executions:        %d@." result.execs;
  Format.printf "corpus entries:    %d@." result.corpus_size;
  Format.printf "watchdog restarts: %d@." result.restarts;
  Format.printf "coverage:          %.1f%% of %d instrumented lines@."
    (Necofuzz.coverage_pct result)
    (Necofuzz.Coverage.total_lines
       (Necofuzz.Agent.target_region Necofuzz.Kvm_intel));
  Format.printf "coverage over time:@.";
  List.iter
    (fun (h, c) ->
      if Float.rem h 1.0 = 0.0 then Format.printf "  %4.1fh  %5.1f%%@." h c)
    result.timeline;
  match result.crashes with
  | [] -> Format.printf "no crashes in this short run — try more hours.@."
  | crashes ->
      Format.printf "crash reports:@.";
      List.iter (fun c -> Format.printf "  %a@." Necofuzz.pp_crash c) crashes
