examples/quickstart.ml: Float Format List Necofuzz
