examples/boundary_explorer.mli:
