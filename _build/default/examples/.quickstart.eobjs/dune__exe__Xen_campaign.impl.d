examples/xen_campaign.ml: Format List Necofuzz Nf_cpu
