examples/xen_campaign.mli:
