examples/quickstart.mli:
