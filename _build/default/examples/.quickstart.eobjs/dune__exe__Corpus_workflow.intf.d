examples/corpus_workflow.mli:
