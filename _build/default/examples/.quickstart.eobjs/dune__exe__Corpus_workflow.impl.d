examples/corpus_workflow.ml: Filename Format List Necofuzz Nf_cpu Nf_xen String
