examples/boundary_explorer.ml: Format List Necofuzz Nf_cpu Nf_stdext String
