examples/find_cve.ml: Format List Necofuzz Nf_cpu Nf_kvm
