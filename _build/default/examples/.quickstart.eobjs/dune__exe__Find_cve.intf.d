examples/find_cve.mli:
