(* Integration tests for the agent: short campaigns against every target,
   crash triage, watchdog accounting and ablation plumbing. *)

module Agent = Nf_agent.Agent
module Cov = Nf_coverage.Coverage

let check = Alcotest.check

let short_cfg ?(hours = 0.6) ?(seed = 1) ?ablation ?mode target =
  let cfg = { (Agent.default_cfg target) with seed; duration_hours = hours } in
  let cfg = match ablation with Some a -> { cfg with ablation = a } | None -> cfg in
  match mode with Some m -> { cfg with mode = m } | None -> cfg

let test_campaign_produces_coverage () =
  let r = Agent.run (short_cfg Agent.Kvm_intel) in
  Alcotest.(check bool) "executions happened" true (r.execs > 100);
  Alcotest.(check bool) "coverage nonzero" true (Cov.Map.coverage_pct r.coverage > 20.0);
  Alcotest.(check bool) "corpus grew beyond seeds" true (r.corpus_size > 2)

let test_campaign_deterministic () =
  let a = Agent.run (short_cfg ~hours:0.3 Agent.Kvm_intel) in
  let b = Agent.run (short_cfg ~hours:0.3 Agent.Kvm_intel) in
  check Alcotest.int "same execs" a.execs b.execs;
  check (Alcotest.float 0.001) "same coverage"
    (Cov.Map.coverage_pct a.coverage)
    (Cov.Map.coverage_pct b.coverage)

let test_campaign_seed_changes_course () =
  let a = Agent.run (short_cfg ~hours:1.0 ~seed:1 Agent.Kvm_intel) in
  let b = Agent.run (short_cfg ~hours:1.0 ~seed:2 Agent.Kvm_intel) in
  Alcotest.(check bool) "different campaigns (almost surely)" true
    (a.corpus_size <> b.corpus_size
    || a.execs <> b.execs
    || a.timeline <> b.timeline
    || Cov.Map.coverage_pct a.coverage <> Cov.Map.coverage_pct b.coverage)

let test_timeline_monotone () =
  let r = Agent.run (short_cfg ~hours:1.2 Agent.Kvm_intel) in
  let rec monotone = function
    | (h1, c1) :: ((h2, c2) :: _ as rest) ->
        if h2 < h1 then Alcotest.fail "time goes backwards";
        if c2 < c1 -. 1e-9 then Alcotest.fail "coverage decreased";
        monotone rest
    | _ -> ()
  in
  monotone r.timeline;
  Alcotest.(check bool) "has checkpoints" true (List.length r.timeline >= 2)

let test_all_targets_run () =
  List.iter
    (fun target ->
      let r = Agent.run (short_cfg ~hours:0.3 target) in
      Alcotest.(check bool)
        (Agent.target_name target ^ " executes")
        true (r.execs > 10))
    [ Agent.Kvm_intel; Agent.Kvm_amd; Agent.Xen_intel; Agent.Xen_amd ]

let test_vbox_blackbox () =
  let r =
    Agent.run (short_cfg ~hours:0.5 ~mode:Nf_fuzzer.Fuzzer.Blind Agent.Vbox)
  in
  Alcotest.(check bool) "executes" true (r.execs > 10);
  (* VirtualBox exposes no coverage: the campaign map stays empty. *)
  check Alcotest.int "no coverage lines" 0 (Cov.Map.covered_lines r.coverage)

let test_crash_dedup () =
  (* Xen/AMD triggers its assertion bugs repeatedly; reports must be
     deduplicated per unique message. *)
  let r = Agent.run (short_cfg ~hours:2.0 Agent.Xen_amd) in
  let keys = List.map (fun (c : Agent.crash_report) -> c.detection ^ c.message) r.crashes in
  check Alcotest.int "unique reports" (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_watchdog_restarts_counted () =
  let r = Agent.run (short_cfg ~hours:3.0 ~seed:5 Agent.Xen_intel) in
  (* The activity-state bug takes the host down at least once in 3h. *)
  Alcotest.(check bool) "watchdog fired" true (r.restarts >= 1);
  Alcotest.(check bool) "campaign continued" true (r.execs > 100)

let test_ablation_reduces_coverage () =
  let full = Agent.run (short_cfg ~hours:1.5 Agent.Kvm_intel) in
  let none =
    Agent.run
      (short_cfg ~hours:1.5
         ~ablation:
           {
             Nf_harness.Executor.use_exec_harness = false;
             generation = Nf_harness.Executor.Template;
             use_configurator = false;
           }
         Agent.Kvm_intel)
  in
  Alcotest.(check bool) "w/o ALL below full configuration" true
    (Cov.Map.coverage_pct none.coverage < Cov.Map.coverage_pct full.coverage)

let test_configurator_off_uses_default () =
  let r =
    Agent.run
      (short_cfg ~hours:0.4
         ~ablation:{ Nf_harness.Executor.full_ablation with use_configurator = false }
         Agent.Kvm_intel)
  in
  List.iter
    (fun (c : Agent.crash_report) ->
      if c.config <> Nf_cpu.Features.default then
        Alcotest.fail "configurator ablated but config varies")
    r.crashes

let test_crash_reports_carry_reproducer () =
  let r = Agent.run (short_cfg ~hours:2.0 Agent.Xen_amd) in
  List.iter
    (fun (c : Agent.crash_report) ->
      check Alcotest.int "reproducer is a full input" Nf_fuzzer.Input.size
        (Bytes.length c.reproducer))
    r.crashes;
  Alcotest.(check bool) "found something to check" true (List.length r.crashes > 0)

let test_guided_beats_blind_on_queue () =
  let guided = Agent.run (short_cfg ~hours:2.0 Agent.Kvm_intel) in
  let blind =
    Agent.run (short_cfg ~hours:2.0 ~mode:Nf_fuzzer.Fuzzer.Blind Agent.Kvm_intel)
  in
  (* Blind mode keeps only a bounded splice reservoir; guided mode keeps
     every coverage-novel input. *)
  Alcotest.(check bool) "guided accumulates a corpus" true
    (guided.corpus_size > blind.corpus_size)

let tests =
  [
    ("campaign produces coverage", `Quick, test_campaign_produces_coverage);
    ("campaign deterministic by seed", `Quick, test_campaign_deterministic);
    ("different seeds diverge", `Quick, test_campaign_seed_changes_course);
    ("timeline monotone", `Quick, test_timeline_monotone);
    ("all targets run", `Quick, test_all_targets_run);
    ("vbox is black-box", `Quick, test_vbox_blackbox);
    ("crash reports deduplicated", `Quick, test_crash_dedup);
    ("watchdog restarts counted", `Quick, test_watchdog_restarts_counted);
    ("ablating everything loses coverage", `Quick, test_ablation_reduces_coverage);
    ("configurator off => default config", `Quick, test_configurator_off_uses_default);
    ("crash reports carry reproducers", `Quick, test_crash_reports_carry_reproducer);
    ("guided grows a corpus", `Quick, test_guided_beats_blind_on_queue);
  ]
