(* Unit and property tests for the nf_stdext utility layer. *)

open Nf_stdext

let check = Alcotest.check

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different streams" false (Rng.bits64 a = Rng.bits64 b)

let test_rng_int_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v
  done

let test_rng_byte_bounds () =
  let r = Rng.create 9 in
  for _ = 1 to 10_000 do
    let v = Rng.byte r in
    if v < 0 || v > 255 then Alcotest.failf "byte out of bounds: %d" v
  done

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  Alcotest.(check bool) "split differs from parent" false
    (Rng.bits64 a = Rng.bits64 b)

let test_rng_chance_extremes () =
  let r = Rng.create 3 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1" true (Rng.chance r ~num:10 ~den:10);
    Alcotest.(check bool) "p=0" false (Rng.chance r ~num:0 ~den:10)
  done

let test_rng_small_count () =
  let r = Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Rng.small_count r ~max:8 in
    if v < 1 || v > 8 then Alcotest.failf "small_count out of range: %d" v
  done

let test_rng_shuffle_permutation () =
  let r = Rng.create 13 in
  let arr = Array.init 20 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check Alcotest.(array int) "is a permutation" (Array.init 20 Fun.id) sorted

let test_rng_float_range () =
  let r = Rng.create 17 in
  for _ = 1 to 1000 do
    let v = Rng.float r in
    if v < 0.0 || v >= 1.0 then Alcotest.failf "float out of range: %f" v
  done

(* --- Bits --- *)

let test_bits_mask () =
  check Alcotest.int64 "mask 0" 0L (Bits.mask 0);
  check Alcotest.int64 "mask 1" 1L (Bits.mask 1);
  check Alcotest.int64 "mask 16" 0xFFFFL (Bits.mask 16);
  check Alcotest.int64 "mask 64" (-1L) (Bits.mask 64)

let test_bits_set_clear_flip () =
  let v = Bits.set 0L 5 in
  Alcotest.(check bool) "set" true (Bits.is_set v 5);
  let v = Bits.clear v 5 in
  Alcotest.(check bool) "clear" false (Bits.is_set v 5);
  let v = Bits.flip v 63 in
  Alcotest.(check bool) "flip on" true (Bits.is_set v 63);
  let v = Bits.flip v 63 in
  Alcotest.(check bool) "flip off" false (Bits.is_set v 63)

let test_bits_popcount () =
  check Alcotest.int "popcount 0" 0 (Bits.popcount 0L);
  check Alcotest.int "popcount -1" 64 (Bits.popcount (-1L));
  check Alcotest.int "popcount 0xF0" 4 (Bits.popcount 0xF0L)

let test_bits_hamming () =
  check Alcotest.int "same" 0 (Bits.hamming 5L 5L);
  check Alcotest.int "one bit" 1 (Bits.hamming 4L 5L);
  check Alcotest.int "width-restricted" 1 (Bits.hamming ~width:8 0x1FFL 0xFEL)

let test_bits_canonical () =
  Alcotest.(check bool) "zero" true (Bits.is_canonical 0L);
  Alcotest.(check bool) "kernel addr" true (Bits.is_canonical 0xFFFF_8000_0000_0000L);
  Alcotest.(check bool) "user addr" true (Bits.is_canonical 0x0000_7FFF_FFFF_FFFFL);
  Alcotest.(check bool) "non-canonical" false (Bits.is_canonical 0x8000_0000_0000_0000L);
  Alcotest.(check bool) "hole" false (Bits.is_canonical 0x0001_0000_0000_0000L)

let test_bits_aligned () =
  Alcotest.(check bool) "4K aligned" true (Bits.is_aligned 0x1000L 12);
  Alcotest.(check bool) "unaligned" false (Bits.is_aligned 0x1001L 12)

let prop_insert_extract =
  QCheck.Test.make ~name:"bits: extract after insert" ~count:500
    QCheck.(triple int64 (int_bound 47) (int_bound 15))
    (fun (v, lo, w) ->
      let w = w + 1 in
      let field = Nf_stdext.Bits.truncate v w in
      let out = Nf_stdext.Bits.insert 0L ~lo ~width:w field in
      Nf_stdext.Bits.extract out ~lo ~width:w = field)

let prop_truncate_idempotent =
  QCheck.Test.make ~name:"bits: truncate idempotent" ~count:500
    QCheck.(pair int64 (int_bound 63))
    (fun (v, w) ->
      let w = w + 1 in
      Nf_stdext.Bits.truncate (Nf_stdext.Bits.truncate v w) w
      = Nf_stdext.Bits.truncate v w)

let prop_hamming_symmetric =
  QCheck.Test.make ~name:"bits: hamming symmetric" ~count:500
    QCheck.(pair int64 int64)
    (fun (a, b) -> Nf_stdext.Bits.hamming a b = Nf_stdext.Bits.hamming b a)

(* --- Stats --- *)

let test_stats_mean_median () =
  check (Alcotest.float 1e-9) "mean" 3.0 (Stats.mean [| 1.; 2.; 3.; 4.; 5. |]);
  check (Alcotest.float 1e-9) "median odd" 3.0 (Stats.median [| 5.; 1.; 3.; 2.; 4. |]);
  check (Alcotest.float 1e-9) "median even" 2.5 (Stats.median [| 1.; 2.; 3.; 4. |])

let test_stats_stddev () =
  check (Alcotest.float 1e-9) "stddev" (sqrt 2.5) (Stats.stddev [| 1.; 2.; 3.; 4.; 5. |])

let test_stats_ci_small () =
  let lo, hi = Stats.ci95_median [| 3.; 1.; 2. |] in
  check (Alcotest.float 1e-9) "lo" 1.0 lo;
  check (Alcotest.float 1e-9) "hi" 3.0 hi

let test_stats_mwu_identical () =
  let _, p = Stats.mann_whitney_u [| 1.; 2.; 3. |] [| 1.; 2.; 3. |] in
  Alcotest.(check bool) "p near 1 for identical" true (p > 0.5)

let test_stats_mwu_separated () =
  let _, p =
    Stats.mann_whitney_u [| 10.; 11.; 12.; 13.; 14. |] [| 1.; 2.; 3.; 4.; 5. |]
  in
  Alcotest.(check bool) "p small for separated" true (p < 0.05)

let test_stats_cohens_d () =
  let d = Stats.cohens_d [| 10.; 11.; 12. |] [| 1.; 2.; 3. |] in
  Alcotest.(check bool) "large effect" true (d > 2.0)

let test_histogram () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 9.9; 100.0; -5.0 ];
  check Alcotest.int "count" 5 h.Stats.Histogram.count;
  check Alcotest.int "clamped high" 2 h.Stats.Histogram.bins.(9)

(* --- Vclock --- *)

let test_vclock () =
  let c = Vclock.create () in
  Vclock.advance_ms c 1500;
  check (Alcotest.float 1e-9) "1.5s" 1.5 (Vclock.now_s c);
  Vclock.advance_s c 3600;
  Alcotest.(check bool) "about an hour" true (Vclock.now_hours c > 1.0);
  Alcotest.(check bool) "deadline" true
    (Vclock.reached c ~deadline_us:(Vclock.of_hours 1.0))

(* --- Table --- *)

let test_table_render () =
  let t = Table.create [ "a"; "b" ] in
  Table.add_row t [ "xx"; "y" ];
  Table.add_sep t;
  Table.add_row t [ "1"; "22" ];
  let buf = Buffer.create 64 in
  Table.render t (Format.formatter_of_buffer buf);
  let s = Buffer.contents buf in
  Alcotest.(check bool) "contains header" true
    (String.length s > 0 && String.index_opt s 'a' <> None)

let tests =
  [
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng seeds differ", `Quick, test_rng_seeds_differ);
    ("rng int bounds", `Quick, test_rng_int_bounds);
    ("rng byte bounds", `Quick, test_rng_byte_bounds);
    ("rng split independent", `Quick, test_rng_split_independent);
    ("rng chance extremes", `Quick, test_rng_chance_extremes);
    ("rng small_count range", `Quick, test_rng_small_count);
    ("rng shuffle is permutation", `Quick, test_rng_shuffle_permutation);
    ("rng float range", `Quick, test_rng_float_range);
    ("bits mask", `Quick, test_bits_mask);
    ("bits set/clear/flip", `Quick, test_bits_set_clear_flip);
    ("bits popcount", `Quick, test_bits_popcount);
    ("bits hamming", `Quick, test_bits_hamming);
    ("bits canonical", `Quick, test_bits_canonical);
    ("bits aligned", `Quick, test_bits_aligned);
    ("stats mean/median", `Quick, test_stats_mean_median);
    ("stats stddev", `Quick, test_stats_stddev);
    ("stats ci small-sample", `Quick, test_stats_ci_small);
    ("stats mwu identical", `Quick, test_stats_mwu_identical);
    ("stats mwu separated", `Quick, test_stats_mwu_separated);
    ("stats cohen's d", `Quick, test_stats_cohens_d);
    ("stats histogram", `Quick, test_histogram);
    ("vclock", `Quick, test_vclock);
    ("table render", `Quick, test_table_render);
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_insert_extract; prop_truncate_idempotent; prop_hamming_symmetric ]
