(* Tests for the CPU oracle: capability model, VM-entry checks (every
   witness must fail exactly its own check), hardware quirks, the L2
   execution model, and the SVM side. *)

open Nf_vmcs

let check = Alcotest.check
let caps = Nf_cpu.Vmx_caps.alder_lake
let scaps = Nf_cpu.Svm_caps.zen3

(* --- capability model --- *)

let test_ctl_round_valid () =
  let rng = Nf_stdext.Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Nf_stdext.Bits.truncate (Nf_stdext.Rng.bits64 rng) 32 in
    List.iter
      (fun c ->
        if not (Nf_cpu.Vmx_caps.ctl_valid c (Nf_cpu.Vmx_caps.ctl_round c v)) then
          Alcotest.failf "round produced invalid control %Lx" v)
      [ caps.pin; caps.proc; caps.proc2; caps.exit; caps.entry ]
  done

let test_ctl_round_idempotent () =
  let rng = Nf_stdext.Rng.create 2 in
  for _ = 1 to 1000 do
    let v = Nf_stdext.Bits.truncate (Nf_stdext.Rng.bits64 rng) 32 in
    let r = Nf_cpu.Vmx_caps.ctl_round caps.pin v in
    check Alcotest.int64 "idempotent" r (Nf_cpu.Vmx_caps.ctl_round caps.pin r)
  done

let test_cr_round_valid () =
  let rng = Nf_stdext.Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Nf_stdext.Rng.bits64 rng in
    Alcotest.(check bool) "cr0 round valid" true
      (Nf_cpu.Vmx_caps.cr0_valid caps (Nf_cpu.Vmx_caps.cr0_round caps v));
    Alcotest.(check bool) "cr4 round valid" true
      (Nf_cpu.Vmx_caps.cr4_valid caps (Nf_cpu.Vmx_caps.cr4_round caps v))
  done

let test_cr0_unrestricted_relax () =
  (* PE/PG clear is invalid normally, valid for unrestricted guests. *)
  let v = Nf_stdext.Bits.set 0L Nf_x86.Cr0.ne in
  Alcotest.(check bool) "strict rejects" false (Nf_cpu.Vmx_caps.cr0_valid caps v);
  Alcotest.(check bool) "unrestricted accepts" true
    (Nf_cpu.Vmx_caps.cr0_valid ~unrestricted:true caps v)

let test_apply_features_masks_ept () =
  let f = { Nf_cpu.Features.default with ept = false } in
  let masked = Nf_cpu.Vmx_caps.apply_features caps f in
  Alcotest.(check bool) "EPT bit no longer allowed" false
    (Nf_stdext.Bits.is_set masked.proc2.allowed1 Controls.Proc2.enable_ept)

let test_apply_features_dependents () =
  (* Disabling EPT silently disables unrestricted guest too. *)
  let f =
    Nf_cpu.Features.normalize { Nf_cpu.Features.default with ept = false }
  in
  Alcotest.(check bool) "unrestricted off" false f.unrestricted_guest;
  Alcotest.(check bool) "pml off" false f.pml

let test_features_flag_roundtrip () =
  let f = Nf_cpu.Features.default in
  for i = 0 to Nf_cpu.Features.flag_count - 1 do
    let f' = Nf_cpu.Features.with_nth_flag f i false in
    Alcotest.(check bool) (Nf_cpu.Features.flag_name i) false
      (Nf_cpu.Features.nth_flag f' i)
  done

(* --- VM-entry checks: golden passes, witnesses fail their own check --- *)

let test_golden_enters () =
  match Nf_cpu.Vmx_cpu.enter ~caps (Nf_validator.Golden.vmcs caps) with
  | Nf_cpu.Vmx_cpu.Entered _ -> ()
  | o -> Alcotest.failf "golden rejected: %s" (Nf_cpu.Vmx_cpu.outcome_name o)

let witness_case (w : Nf_validator.Witness.t) =
  ( "witness fails own check: " ^ w.check_id,
    `Quick,
    fun () ->
      let vmcs = w.build caps in
      match
        Nf_cpu.Vmx_checks.run_all
          { Nf_cpu.Vmx_checks.caps; vmcs; entry_msr_load = [||] }
      with
      | Ok () -> Alcotest.failf "%s passed" w.check_id
      | Error (c, _) ->
          check Alcotest.string "first failure" w.check_id c.Nf_cpu.Vmx_checks.id )

let svm_witness_case (w : Nf_validator.Witness.svm_t) =
  ( "svm witness fails own check: " ^ w.svm_check_id,
    `Quick,
    fun () ->
      let vmcb = w.svm_build scaps in
      match Nf_cpu.Svm_checks.run_all { Nf_cpu.Svm_checks.caps = scaps; vmcb } with
      | Ok () -> Alcotest.failf "%s passed" w.svm_check_id
      | Error (c, _) ->
          check Alcotest.string "first failure" w.svm_check_id c.Nf_cpu.Svm_checks.id )

(* --- hardware quirks --- *)

let test_quirk_ia32e_pae () =
  (* The spec model rejects IA-32e without PAE; the silicon enters. *)
  let vmcs = (Nf_validator.Witness.find_vmx "guest.ia32e_pae").build caps in
  (match
     Nf_cpu.Vmx_checks.run_all { Nf_cpu.Vmx_checks.caps; vmcs; entry_msr_load = [||] }
   with
  | Error (c, _) ->
      check Alcotest.string "spec rejects" "guest.ia32e_pae" c.Nf_cpu.Vmx_checks.id
  | Ok () -> Alcotest.fail "spec model should reject");
  match Nf_cpu.Vmx_cpu.enter ~caps vmcs with
  | Nf_cpu.Vmx_cpu.Entered _ -> ()
  | o -> Alcotest.failf "hardware should enter: %s" (Nf_cpu.Vmx_cpu.outcome_name o)

let test_silent_adjust_hlt_injection () =
  let vmcs = Nf_validator.Golden.vmcs caps in
  Vmcs.write vmcs Field.guest_activity_state Field.Activity.hlt;
  Vmcs.write vmcs Field.entry_intr_info
    (Nf_x86.Exn.Intr_info.make ~typ:Nf_x86.Exn.Intr_info.type_nmi ~vector:2 ());
  match Nf_cpu.Vmx_cpu.enter_and_writeback ~caps vmcs with
  | Nf_cpu.Vmx_cpu.Entered { adjustments } ->
      Alcotest.(check bool) "activity silently rounded" true
        (List.exists (fun (f, _, _) -> f = Field.guest_activity_state) adjustments);
      check Alcotest.int64 "now ACTIVE" Field.Activity.active
        (Vmcs.read vmcs Field.guest_activity_state)
  | o -> Alcotest.failf "should enter: %s" (Nf_cpu.Vmx_cpu.outcome_name o)

let test_vmfail_control_classified () =
  let vmcs = (Nf_validator.Witness.find_vmx "ctl.pin_reserved").build caps in
  match Nf_cpu.Vmx_cpu.enter ~caps vmcs with
  | Nf_cpu.Vmx_cpu.Vmfail_control _ -> ()
  | o -> Alcotest.failf "expected control VMfail, got %s" (Nf_cpu.Vmx_cpu.outcome_name o)

let test_vmfail_host_classified () =
  let vmcs = (Nf_validator.Witness.find_vmx "host.canonical").build caps in
  match Nf_cpu.Vmx_cpu.enter ~caps vmcs with
  | Nf_cpu.Vmx_cpu.Vmfail_host _ -> ()
  | o -> Alcotest.failf "expected host VMfail, got %s" (Nf_cpu.Vmx_cpu.outcome_name o)

let test_guest_fail_is_early_exit () =
  let vmcs = (Nf_validator.Witness.find_vmx "guest.rflags").build caps in
  match Nf_cpu.Vmx_cpu.enter ~caps vmcs with
  | Nf_cpu.Vmx_cpu.Entry_fail_guest _ -> ()
  | o -> Alcotest.failf "expected guest entry failure, got %s" (Nf_cpu.Vmx_cpu.outcome_name o)

let test_msr_load_canonical () =
  let vmcs = Nf_validator.Golden.vmcs caps in
  match
    Nf_cpu.Vmx_cpu.enter ~caps
      ~msr_load:[| (Nf_x86.Msr.ia32_kernel_gs_base, 0x8000_0000_0000_0000L) |]
      vmcs
  with
  | Nf_cpu.Vmx_cpu.Entry_fail_msr_load { index = 0; _ } -> ()
  | o -> Alcotest.failf "expected MSR-load failure, got %s" (Nf_cpu.Vmx_cpu.outcome_name o)

let test_msr_load_fs_base_rejected () =
  match Nf_cpu.Vmx_cpu.check_msr_load_entry (Nf_x86.Msr.ia32_fs_base, 0L) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "FS_BASE must be rejected in the MSR-load area"

let test_msr_load_ok () =
  match Nf_cpu.Vmx_cpu.check_msr_load_entry (Nf_x86.Msr.ia32_pat, 0x0007040600070406L) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "PAT load should pass: %s" m

(* --- L2 execution model (Intel) --- *)

let golden = Nf_validator.Golden.vmcs caps

let expect_exit insn reason =
  match Nf_cpu.Vmx_exec.decide golden insn with
  | Nf_cpu.Vmx_exec.Exit e -> check Alcotest.int "reason" reason e.reason
  | No_exit -> Alcotest.failf "%s should exit" (Nf_cpu.Insn.name insn)

let expect_no_exit insn =
  match Nf_cpu.Vmx_exec.decide golden insn with
  | Nf_cpu.Vmx_exec.No_exit -> ()
  | Exit e -> Alcotest.failf "%s exited with %d" (Nf_cpu.Insn.name insn) e.reason

let test_exec_cpuid_unconditional () = expect_exit (Cpuid 0) Nf_cpu.Exit_reason.cpuid
let test_exec_invd_unconditional () = expect_exit Invd Nf_cpu.Exit_reason.invd
let test_exec_vmcall_unconditional () = expect_exit Vmcall Nf_cpu.Exit_reason.vmcall
let test_exec_xsetbv_unconditional () = expect_exit (Xsetbv 3L) Nf_cpu.Exit_reason.xsetbv

let test_exec_hlt_gated () =
  expect_exit Hlt Nf_cpu.Exit_reason.hlt;
  let v = Vmcs.copy golden in
  Vmcs.set_bit v Field.proc_based_ctls Controls.Proc.hlt_exiting false;
  match Nf_cpu.Vmx_exec.decide v Hlt with
  | Nf_cpu.Vmx_exec.No_exit -> ()
  | Exit _ -> Alcotest.fail "hlt should not exit without hlt_exiting"

let test_exec_cr3_default1 () =
  (* CR3-load exiting is a reserved-1 control: mov cr3 always exits under
     the golden configuration. *)
  expect_exit (Mov_to_cr (3, 0x9999L)) Nf_cpu.Exit_reason.cr_access

let test_exec_cr3_target_list () =
  let v = Vmcs.copy golden in
  Vmcs.write v Field.cr3_target_count 1L;
  Vmcs.write v (Field.find_exn "CR3_TARGET_VALUE0") 0x4000L;
  (match Nf_cpu.Vmx_exec.decide v (Mov_to_cr (3, 0x4000L)) with
  | Nf_cpu.Vmx_exec.No_exit -> ()
  | Exit _ -> Alcotest.fail "CR3 target value should not exit");
  match Nf_cpu.Vmx_exec.decide v (Mov_to_cr (3, 0x5000L)) with
  | Nf_cpu.Vmx_exec.Exit _ -> ()
  | No_exit -> Alcotest.fail "non-target CR3 should exit"

let test_exec_cr0_mask () =
  let v = Vmcs.copy golden in
  Vmcs.write v Field.cr0_guest_host_mask 1L;
  Vmcs.write v Field.cr0_read_shadow 1L;
  (match Nf_cpu.Vmx_exec.decide v (Mov_to_cr (0, 1L)) with
  | Nf_cpu.Vmx_exec.No_exit -> ()
  | Exit _ -> Alcotest.fail "matching shadow should not exit");
  match Nf_cpu.Vmx_exec.decide v (Mov_to_cr (0, 0L)) with
  | Nf_cpu.Vmx_exec.Exit e -> check Alcotest.int "cr access" Nf_cpu.Exit_reason.cr_access e.reason
  | No_exit -> Alcotest.fail "owned-bit change must exit"

let test_exec_msr_bitmap_deterministic () =
  (* Same VMCS, same MSR: the bitmap surrogate must be deterministic. *)
  let a = Nf_cpu.Vmx_exec.decide golden (Rdmsr Nf_x86.Msr.ia32_tsc) in
  let b = Nf_cpu.Vmx_exec.decide golden (Rdmsr Nf_x86.Msr.ia32_tsc) in
  Alcotest.(check bool) "deterministic" true (a = b)

let test_exec_msr_out_of_range_always_exits () =
  expect_exit (Rdmsr 0x12345678) Nf_cpu.Exit_reason.msr_read

let test_exec_io_unconditional_bit () =
  let v = Vmcs.copy golden in
  Vmcs.set_bit v Field.proc_based_ctls Controls.Proc.unconditional_io_exiting true;
  match Nf_cpu.Vmx_exec.decide v (Io_in 0x60) with
  | Nf_cpu.Vmx_exec.Exit e ->
      check Alcotest.int "io reason" Nf_cpu.Exit_reason.io_instruction e.reason
  | No_exit -> Alcotest.fail "unconditional io must exit"

let test_exec_io_no_bitmaps () = expect_no_exit (Io_in 0x60)

let test_exec_vmx_insns () =
  List.iter
    (fun (k, r) -> expect_exit (Vmx_in_guest k) r)
    [ ("vmxon", Nf_cpu.Exit_reason.vmxon); ("vmclear", Nf_cpu.Exit_reason.vmclear);
      ("vmlaunch", Nf_cpu.Exit_reason.vmlaunch); ("vmread", Nf_cpu.Exit_reason.vmread);
      ("vmwrite", Nf_cpu.Exit_reason.vmwrite); ("vmresume", Nf_cpu.Exit_reason.vmresume);
      ("vmxoff", Nf_cpu.Exit_reason.vmxoff); ("invept", Nf_cpu.Exit_reason.invept);
      ("invvpid", Nf_cpu.Exit_reason.invvpid); ("invpcid", Nf_cpu.Exit_reason.invpcid) ]

let test_exec_exception_bitmap () =
  let v = Vmcs.copy golden in
  Vmcs.write v Field.exception_bitmap (Nf_stdext.Bits.set 0L Nf_x86.Exn.ud);
  (match Nf_cpu.Vmx_exec.decide v Ud2 with
  | Nf_cpu.Vmx_exec.Exit e ->
      check Alcotest.int "exception exit" Nf_cpu.Exit_reason.exception_nmi e.reason
  | No_exit -> Alcotest.fail "#UD should exit with bitmap bit set");
  expect_no_exit Ud2

let test_exec_rdtscp_ud_without_feature () =
  let v = Vmcs.copy golden in
  Vmcs.set_bit v Field.proc_based_ctls2 Controls.Proc2.enable_rdtscp false;
  Vmcs.write v Field.exception_bitmap (Nf_stdext.Bits.set 0L Nf_x86.Exn.ud);
  match Nf_cpu.Vmx_exec.decide v Rdtscp with
  | Nf_cpu.Vmx_exec.Exit e ->
      check Alcotest.int "exception" Nf_cpu.Exit_reason.exception_nmi e.reason
  | No_exit -> Alcotest.fail "rdtscp without feature should #UD"

(* --- SVM --- *)

let test_svm_golden_enters () =
  match Nf_cpu.Svm_cpu.vmrun ~caps:scaps (Nf_validator.Golden.vmcb scaps) with
  | Nf_cpu.Svm_cpu.Entered -> ()
  | Vmexit_invalid { msg; _ } -> Alcotest.failf "golden VMCB rejected: %s" msg

let test_svm_lme_without_pg_allowed () =
  (* The architectural ambiguity Xen mishandles: hardware accepts it. *)
  let vmcb = Nf_validator.Golden.vmcb scaps in
  Nf_vmcb.Vmcb.set_bit vmcb Nf_vmcb.Vmcb.cr0 Nf_x86.Cr0.pg false;
  Alcotest.(check bool) "is the LMA&&!PG corner" true
    (Nf_cpu.Svm_cpu.lme_without_paging vmcb);
  match Nf_cpu.Svm_cpu.vmrun ~caps:scaps vmcb with
  | Nf_cpu.Svm_cpu.Entered -> ()
  | Vmexit_invalid { msg; _ } -> Alcotest.failf "hardware must accept: %s" msg

let test_svm_exec_cpuid () =
  let vmcb = Nf_validator.Golden.vmcb scaps in
  match Nf_cpu.Svm_exec.decide vmcb (Cpuid 0) with
  | Nf_cpu.Svm_exec.Exit e -> check Alcotest.int64 "cpuid" Nf_vmcb.Vmcb.Exit.cpuid e.code
  | No_exit -> Alcotest.fail "cpuid intercepted in golden"

let test_svm_exec_vmrun_in_l2 () =
  let vmcb = Nf_validator.Golden.vmcb scaps in
  match Nf_cpu.Svm_exec.decide vmcb (Vmx_in_guest "vmrun") with
  | Nf_cpu.Svm_exec.Exit e -> check Alcotest.int64 "vmrun" Nf_vmcb.Vmcb.Exit.vmrun e.code
  | No_exit -> Alcotest.fail "vmrun always intercepted"

let test_svm_exec_rdtsc_gated () =
  let vmcb = Nf_validator.Golden.vmcb scaps in
  (match Nf_cpu.Svm_exec.decide vmcb Rdtsc with
  | Nf_cpu.Svm_exec.No_exit -> ()
  | Exit _ -> Alcotest.fail "rdtsc not intercepted in golden");
  Nf_vmcb.Vmcb.set_bit vmcb Nf_vmcb.Vmcb.intercept_vec3 Nf_vmcb.Vmcb.Vec3.rdtsc true;
  match Nf_cpu.Svm_exec.decide vmcb Rdtsc with
  | Nf_cpu.Svm_exec.Exit _ -> ()
  | No_exit -> Alcotest.fail "rdtsc intercept bit must exit"

let test_exit_reason_names () =
  check Alcotest.string "33" "INVALID_GUEST_STATE"
    (Nf_cpu.Exit_reason.name Nf_cpu.Exit_reason.invalid_guest_state);
  check Alcotest.int64 "entry-failure flag" 0x8000_0021L
    (Nf_cpu.Exit_reason.with_entry_failure Nf_cpu.Exit_reason.invalid_guest_state)

let test_insn_error_names () =
  check Alcotest.string "7" "ENTRY_INVALID_CONTROL"
    (Nf_cpu.Vmx_cpu.Insn_error.name Nf_cpu.Vmx_cpu.Insn_error.entry_invalid_control)

let tests =
  [
    ("ctl_round produces valid controls", `Quick, test_ctl_round_valid);
    ("ctl_round idempotent", `Quick, test_ctl_round_idempotent);
    ("cr rounds valid", `Quick, test_cr_round_valid);
    ("unrestricted relaxes CR0", `Quick, test_cr0_unrestricted_relax);
    ("apply_features masks EPT", `Quick, test_apply_features_masks_ept);
    ("feature dependencies normalize", `Quick, test_apply_features_dependents);
    ("feature flag roundtrip", `Quick, test_features_flag_roundtrip);
    ("golden state enters", `Quick, test_golden_enters);
    ("quirk: IA-32e without PAE accepted by silicon", `Quick, test_quirk_ia32e_pae);
    ("silent adjust: HLT + injection", `Quick, test_silent_adjust_hlt_injection);
    ("control failures VMfail(7)", `Quick, test_vmfail_control_classified);
    ("host failures VMfail(8)", `Quick, test_vmfail_host_classified);
    ("guest failures early-exit", `Quick, test_guest_fail_is_early_exit);
    ("MSR-load canonical enforcement", `Quick, test_msr_load_canonical);
    ("MSR-load rejects FS_BASE", `Quick, test_msr_load_fs_base_rejected);
    ("MSR-load accepts valid PAT", `Quick, test_msr_load_ok);
    ("exec: cpuid unconditional", `Quick, test_exec_cpuid_unconditional);
    ("exec: invd unconditional", `Quick, test_exec_invd_unconditional);
    ("exec: vmcall unconditional", `Quick, test_exec_vmcall_unconditional);
    ("exec: xsetbv unconditional", `Quick, test_exec_xsetbv_unconditional);
    ("exec: hlt gated by control", `Quick, test_exec_hlt_gated);
    ("exec: cr3 load default1", `Quick, test_exec_cr3_default1);
    ("exec: cr3 target list", `Quick, test_exec_cr3_target_list);
    ("exec: cr0 mask/shadow", `Quick, test_exec_cr0_mask);
    ("exec: msr bitmap deterministic", `Quick, test_exec_msr_bitmap_deterministic);
    ("exec: out-of-range msr exits", `Quick, test_exec_msr_out_of_range_always_exits);
    ("exec: unconditional io", `Quick, test_exec_io_unconditional_bit);
    ("exec: io without bitmaps", `Quick, test_exec_io_no_bitmaps);
    ("exec: vmx instructions in L2", `Quick, test_exec_vmx_insns);
    ("exec: exception bitmap", `Quick, test_exec_exception_bitmap);
    ("exec: rdtscp #UD without feature", `Quick, test_exec_rdtscp_ud_without_feature);
    ("svm: golden VMCB enters", `Quick, test_svm_golden_enters);
    ("svm: LME without PG accepted", `Quick, test_svm_lme_without_pg_allowed);
    ("svm exec: cpuid", `Quick, test_svm_exec_cpuid);
    ("svm exec: vmrun in L2", `Quick, test_svm_exec_vmrun_in_l2);
    ("svm exec: rdtsc gated", `Quick, test_svm_exec_rdtsc_gated);
    ("exit reason names", `Quick, test_exit_reason_names);
    ("instruction error names", `Quick, test_insn_error_names);
  ]
  @ List.map witness_case Nf_validator.Witness.vmx
  @ List.map svm_witness_case Nf_validator.Witness.svm
