(* Tests for the VMCS layout, store and serialisation. *)

open Nf_vmcs

let check = Alcotest.check

(* --- layout invariants --- *)

let test_field_count () =
  check Alcotest.int "165 fields (the paper's layout)" 165 Field.count

let test_total_bits () =
  check Alcotest.int "8,000-bit VM state" 8000 Field.total_bits

let test_unique_names () =
  let names = List.map Field.name Field.all in
  check Alcotest.int "names unique" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_unique_encodings () =
  let encs = List.map Field.encoding Field.all in
  check Alcotest.int "encodings unique" (List.length encs)
    (List.length (List.sort_uniq compare encs))

let test_group_partition () =
  let count g = List.length (Field.in_group g) in
  check Alcotest.int "groups partition the table" Field.count
    (count Field.Control + count Field.Exit_info + count Field.Guest
   + count Field.Host)

let test_encoding_lookup () =
  List.iter
    (fun f ->
      match Field.of_encoding (Field.encoding f) with
      | Some f' -> check Alcotest.int "roundtrip" f f'
      | None -> Alcotest.failf "lost field %s" (Field.name f))
    Field.all

let test_find_exn_unknown () =
  Alcotest.check_raises "unknown field" (Invalid_argument "Vmcs field \"NOPE\" not defined")
    (fun () -> ignore (Field.find_exn "NOPE"))

let test_width_classes () =
  check Alcotest.int "16-bit fields" 20
    (List.length (List.filter (fun f -> Field.width f = Field.W16) Field.all));
  List.iter
    (fun f ->
      let b = Field.bits f in
      if b <> 16 && b <> 32 && b <> 64 then
        Alcotest.failf "odd width for %s" (Field.name f))
    Field.all

let test_segment_field_lookup () =
  List.iter
    (fun r ->
      ignore (Field.guest_selector r);
      ignore (Field.guest_base r);
      ignore (Field.guest_limit r);
      ignore (Field.guest_ar r))
    Nf_x86.Seg.registers

let test_host_selector_no_ldtr () =
  Alcotest.check_raises "no host LDTR"
    (Invalid_argument "host has no LDTR selector field") (fun () ->
      ignore (Field.host_selector Nf_x86.Seg.LDTR))

(* --- store --- *)

let test_write_truncates () =
  let v = Vmcs.create () in
  Vmcs.write v Field.vpid 0x1234_5678L;
  check Alcotest.int64 "16-bit field truncated" 0x5678L (Vmcs.read v Field.vpid)

let test_bit_ops () =
  let v = Vmcs.create () in
  Vmcs.set_bit v Field.guest_cr0 31 true;
  Alcotest.(check bool) "bit set" true (Vmcs.read_bit v Field.guest_cr0 31);
  Vmcs.flip_bit v Field.guest_cr0 31;
  Alcotest.(check bool) "bit flipped off" false (Vmcs.read_bit v Field.guest_cr0 31)

let test_copy_independent () =
  let a = Vmcs.create () in
  Vmcs.write a Field.guest_rip 5L;
  let b = Vmcs.copy a in
  Vmcs.write b Field.guest_rip 9L;
  check Alcotest.int64 "original untouched" 5L (Vmcs.read a Field.guest_rip)

let test_clear_all () =
  let v = Vmcs.create () in
  Vmcs.write v Field.guest_rip 5L;
  v.Vmcs.launch_state <- Vmcs.Launched;
  Vmcs.clear_all v;
  check Alcotest.int64 "zeroed" 0L (Vmcs.read v Field.guest_rip);
  Alcotest.(check bool) "launch state clear" true (v.Vmcs.launch_state = Vmcs.Clear)

(* --- serialisation --- *)

let test_blob_size () =
  check Alcotest.int "1000-byte blob" 1000 Vmcs.blob_bytes

let random_vmcs seed =
  let rng = Nf_stdext.Rng.create seed in
  let v = Vmcs.create () in
  List.iter
    (fun f ->
      Vmcs.write v f
        (Nf_stdext.Bits.truncate (Nf_stdext.Rng.bits64 rng) (Field.bits f)))
    Field.all;
  v

let test_blob_roundtrip () =
  for seed = 1 to 20 do
    let v = random_vmcs seed in
    let v' = Vmcs.of_blob (Vmcs.to_blob v) in
    if not (Vmcs.equal v v') then Alcotest.failf "roundtrip failed at seed %d" seed
  done

let test_of_blob_short () =
  (* A short blob zero-fills the tail instead of failing. *)
  let v = Vmcs.of_blob (Bytes.make 10 '\xFF') in
  check Alcotest.int64 "tail zero" 0L (Vmcs.read v Field.host_rip)

let prop_blob_roundtrip =
  QCheck.Test.make ~name:"vmcs: blob roundtrip" ~count:100 QCheck.int
    (fun seed ->
      let v = random_vmcs seed in
      Vmcs.equal v (Vmcs.of_blob (Vmcs.to_blob v)))

(* --- hamming / diff --- *)

let test_hamming_zero_self () =
  let v = random_vmcs 3 in
  check Alcotest.int "self distance 0" 0 (Vmcs.hamming v v)

let test_hamming_single_bit () =
  let a = random_vmcs 4 in
  let b = Vmcs.copy a in
  Vmcs.flip_bit b Field.guest_cr4 5;
  check Alcotest.int "one bit" 1 (Vmcs.hamming a b)

let prop_hamming_symmetric =
  QCheck.Test.make ~name:"vmcs: hamming symmetric" ~count:50
    QCheck.(pair small_int small_int)
    (fun (s1, s2) ->
      let a = random_vmcs s1 and b = random_vmcs s2 in
      Vmcs.hamming a b = Vmcs.hamming b a)

let test_diff () =
  let a = random_vmcs 5 in
  let b = Vmcs.copy a in
  Vmcs.write b Field.guest_rip (Int64.lognot (Vmcs.read a Field.guest_rip));
  let d = Vmcs.diff a b in
  check Alcotest.int "one differing field" 1 (List.length d);
  check Alcotest.int "it is RIP" Field.guest_rip (List.hd d)

(* --- controls bit definitions --- *)

let test_eptp_make () =
  let e = Controls.Eptp.make ~memtype:6 ~walk_length:3 ~ad:true ~pml4:0x12345000L () in
  check Alcotest.int "memtype" 6 (Controls.Eptp.memtype e);
  check Alcotest.int "walk" 3 (Controls.Eptp.walk_length e);
  Alcotest.(check bool) "ad" true (Controls.Eptp.access_dirty e);
  check Alcotest.int64 "pml4" 0x12345000L (Controls.Eptp.pml4_addr e)

let test_default1_disjoint_from_defined () =
  (* Reserved-1 bits must not overlap the configurable bit lists. *)
  let overlap default1 defined =
    List.exists (fun b -> Nf_stdext.Bits.is_set default1 b) defined
  in
  Alcotest.(check bool) "pin" false Controls.Pin.(overlap default1 defined);
  Alcotest.(check bool) "entry" false Controls.Entry.(overlap default1 defined);
  Alcotest.(check bool) "exit" false Controls.Exit.(overlap default1 defined)

let test_activity_names () =
  check Alcotest.string "wait-for-sipi" "WAIT_FOR_SIPI"
    (Field.Activity.name Field.Activity.wait_for_sipi)

let tests =
  [
    ("field count is 165", `Quick, test_field_count);
    ("total bits is 8000", `Quick, test_total_bits);
    ("field names unique", `Quick, test_unique_names);
    ("field encodings unique", `Quick, test_unique_encodings);
    ("groups partition table", `Quick, test_group_partition);
    ("encoding lookup roundtrip", `Quick, test_encoding_lookup);
    ("find_exn unknown raises", `Quick, test_find_exn_unknown);
    ("width classes", `Quick, test_width_classes);
    ("segment field lookup", `Quick, test_segment_field_lookup);
    ("host has no LDTR selector", `Quick, test_host_selector_no_ldtr);
    ("write truncates to width", `Quick, test_write_truncates);
    ("bit operations", `Quick, test_bit_ops);
      ("copy is independent", `Quick, test_copy_independent);
      ("clear_all", `Quick, test_clear_all);
      ("blob is 1000 bytes", `Quick, test_blob_size);
      ("blob roundtrip", `Quick, test_blob_roundtrip);
      ("short blob zero-fills", `Quick, test_of_blob_short);
      ("hamming self is zero", `Quick, test_hamming_zero_self);
      ("hamming single bit", `Quick, test_hamming_single_bit);
      ("diff finds the field", `Quick, test_diff);
      ("eptp make/accessors", `Quick, test_eptp_make);
      ("default1 disjoint from defined", `Quick, test_default1_disjoint_from_defined);
      ("activity names", `Quick, test_activity_names);
    ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_blob_roundtrip; prop_hamming_symmetric ]
