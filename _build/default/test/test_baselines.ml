(* Tests for the comparison-tool models: each baseline runs, lands in its
   qualitative coverage band, and exhibits the structural property the
   paper attributes to it. *)

module Cov = Nf_coverage.Coverage

let check = Alcotest.check
let pct (r : Nf_baselines.Baseline.run_result) = Cov.Map.coverage_pct r.coverage

let test_syzkaller_intel_band () =
  let r = Nf_baselines.Syzkaller.run_intel ~seed:1 ~duration_hours:4.0 in
  Alcotest.(check bool) "meaningful but bounded" true (pct r > 30.0 && pct r < 75.0)

let test_syzkaller_amd_tiny () =
  let r = Nf_baselines.Syzkaller.run_amd ~seed:1 ~duration_hours:4.0 in
  Alcotest.(check bool) "no AMD harness: near zero" true (pct r < 15.0)

let test_syzkaller_covers_ioctls () =
  (* The Syzkaller-unique lines of Table 2 are the host-side ioctls. *)
  let r = Nf_baselines.Syzkaller.run_intel ~seed:2 ~duration_hours:4.0 in
  let covered_ioctl =
    List.exists
      (fun (p : Cov.probe) ->
        p.name = "ioctl:get_nested_state" && Cov.Map.is_covered r.coverage p)
      (Array.to_list (Cov.probes Nf_kvm.Vmx_nested.region))
  in
  Alcotest.(check bool) "get_nested_state covered" true covered_ioctl

let test_iris_terminates_early () =
  let r = Nf_baselines.Iris.run_intel ~seed:1 ~duration_hours:48.0 in
  (* 3.5 virtual minutes at ~0.35s per replay. *)
  Alcotest.(check bool) "crashed after a few minutes" true (r.execs < 1200);
  Alcotest.(check bool) "still reached mainline" true (pct r > 30.0)

let test_iris_no_failure_branches () =
  let r = Nf_baselines.Iris.run_intel ~seed:1 ~duration_hours:1.0 in
  (* Replay of valid traces never trips a consistency-check failure. *)
  let any_fail =
    List.exists
      (fun (p : Cov.probe) ->
        String.length p.name > 11
        && String.sub p.name 0 11 = "check-fail:"
        && Cov.Map.is_covered r.coverage p)
      (Array.to_list (Cov.probes Nf_kvm.Vmx_nested.region))
  in
  Alcotest.(check bool) "no check-fail branches" false any_fail

let test_selftests_counts () =
  Alcotest.(check bool) "about 60 cases" true
    (abs (Nf_baselines.Selftests.case_count - 60) <= 20)

let test_selftests_bands () =
  let i = Nf_baselines.Selftests.run_intel ~duration_hours:48.0 in
  let a = Nf_baselines.Selftests.run_amd ~duration_hours:48.0 in
  Alcotest.(check bool) "intel band" true (pct i > 45.0 && pct i < 70.0);
  Alcotest.(check bool) "amd band" true (pct a > 60.0 && pct a < 85.0)

let test_selftests_deterministic () =
  let a = Nf_baselines.Selftests.run_intel ~duration_hours:1.0 in
  let b = Nf_baselines.Selftests.run_intel ~duration_hours:1.0 in
  check (Alcotest.float 0.001) "same coverage" (pct a) (pct b)

let test_kut_counts () =
  (* The real suite runs 84 cases, each bundling several sub-checks; our
     model splits sub-checks into separate scenarios. *)
  Alcotest.(check bool) "in the right ballpark" true
    (Nf_baselines.Kvm_unit_tests.case_count >= 60
    && Nf_baselines.Kvm_unit_tests.case_count <= 140)

let test_kut_bands () =
  let i = Nf_baselines.Kvm_unit_tests.run_intel ~duration_hours:48.0 in
  Alcotest.(check bool) "intel band" true (pct i > 60.0 && pct i < 82.0)

let test_kut_no_ioctls () =
  (* Guest-only suite: never touches the host-side interface. *)
  let r = Nf_baselines.Kvm_unit_tests.run_intel ~duration_hours:1.0 in
  let any_ioctl =
    List.exists
      (fun (p : Cov.probe) ->
        String.length p.name > 6
        && String.sub p.name 0 6 = "ioctl:"
        && Cov.Map.is_covered r.coverage p)
      (Array.to_list (Cov.probes Nf_kvm.Vmx_nested.region))
  in
  Alcotest.(check bool) "no ioctl coverage" false any_ioctl

let test_xtf_band () =
  let i = Nf_baselines.Xtf.run_intel ~duration_hours:24.0 in
  let a = Nf_baselines.Xtf.run_amd ~duration_hours:24.0 in
  Alcotest.(check bool) "intel smoke level" true (pct i > 5.0 && pct i < 30.0);
  Alcotest.(check bool) "amd smoke level" true (pct a > 5.0 && pct a < 25.0)

let test_ordering_matches_paper_intel () =
  (* IRIS < Selftests < Syzkaller < KVM-unit-tests (Table 2, Intel). *)
  let iris = pct (Nf_baselines.Iris.run_intel ~seed:1 ~duration_hours:48.0) in
  let self = pct (Nf_baselines.Selftests.run_intel ~duration_hours:48.0) in
  let syz = pct (Nf_baselines.Syzkaller.run_intel ~seed:1 ~duration_hours:24.0) in
  let kut = pct (Nf_baselines.Kvm_unit_tests.run_intel ~duration_hours:48.0) in
  Alcotest.(check bool)
    (Printf.sprintf "iris %.1f < selftests %.1f" iris self)
    true (iris < self);
  Alcotest.(check bool)
    (Printf.sprintf "selftests %.1f < syzkaller %.1f" self syz)
    true (self < syz);
  Alcotest.(check bool)
    (Printf.sprintf "syzkaller %.1f < kut %.1f" syz kut)
    true (syz < kut)

let tests =
  [
    ("syzkaller intel band", `Quick, test_syzkaller_intel_band);
    ("syzkaller amd near zero", `Quick, test_syzkaller_amd_tiny);
    ("syzkaller covers ioctls", `Quick, test_syzkaller_covers_ioctls);
    ("iris terminates early", `Quick, test_iris_terminates_early);
    ("iris hits no failure branches", `Quick, test_iris_no_failure_branches);
    ("selftests case count", `Quick, test_selftests_counts);
    ("selftests bands", `Quick, test_selftests_bands);
    ("selftests deterministic", `Quick, test_selftests_deterministic);
    ("kvm-unit-tests case count", `Quick, test_kut_counts);
    ("kvm-unit-tests band", `Quick, test_kut_bands);
    ("kvm-unit-tests guest-only", `Quick, test_kut_no_ioctls);
    ("xtf bands", `Quick, test_xtf_band);
    ("tool ordering matches Table 2", `Slow, test_ordering_matches_paper_intel);
  ]
