test/test_baselines.ml: Alcotest Array List Nf_baselines Nf_coverage Nf_kvm Printf String
