test/test_experiments.ml: Alcotest Array Buffer Format List Necofuzz Nf_coverage Nf_fuzzer Nf_harness Nf_stdext Printf String
