test/test_cpu.ml: Alcotest Controls Field List Nf_cpu Nf_stdext Nf_validator Nf_vmcb Nf_vmcs Nf_x86 Vmcs
