test/test_tools.ml: Alcotest Buffer Bytes Filename Format Int64 List Nf_agent Nf_cpu Nf_harness Nf_hv Nf_kvm Nf_sanitizer Nf_stdext Nf_validator Nf_vmcb Nf_vmcs Nf_x86 String Sys
