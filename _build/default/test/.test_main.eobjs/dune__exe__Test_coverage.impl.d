test/test_coverage.ml: Alcotest List Nf_coverage Nf_kvm Nf_sanitizer Nf_xen
