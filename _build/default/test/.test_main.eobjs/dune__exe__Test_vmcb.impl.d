test/test_vmcb.ml: Alcotest List Nf_stdext Nf_vmcb Nf_x86 QCheck QCheck_alcotest Vmcb
