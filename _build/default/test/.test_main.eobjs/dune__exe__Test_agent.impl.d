test/test_agent.ml: Alcotest Bytes List Nf_agent Nf_coverage Nf_cpu Nf_fuzzer Nf_harness
