test/test_harness.ml: Alcotest Array Bytes Char List Nf_agent Nf_config Nf_coverage Nf_cpu Nf_fuzzer Nf_harness Nf_hv Nf_kvm Nf_sanitizer Nf_stdext Nf_validator Nf_vbox Nf_vmcs Nf_xen String
