test/test_vmcs.ml: Alcotest Bytes Controls Field Int64 List Nf_stdext Nf_vmcs Nf_x86 QCheck QCheck_alcotest Vmcs
