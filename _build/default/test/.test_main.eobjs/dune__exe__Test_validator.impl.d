test/test_validator.ml: Alcotest Bytes Char Controls Field Format List Nf_cpu Nf_stdext Nf_validator Nf_vmcb Nf_vmcs Nf_x86 Printf QCheck QCheck_alcotest String Vmcs
