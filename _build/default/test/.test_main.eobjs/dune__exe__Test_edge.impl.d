test/test_edge.ml: Alcotest Bytes Format List Nf_agent Nf_config Nf_coverage Nf_cpu Nf_fuzzer Nf_harness Nf_hv Nf_kvm Nf_sanitizer Nf_stdext Nf_validator Nf_vbox Nf_vmcs Nf_x86 Nf_xen Printf String
