test/test_stdext.ml: Alcotest Array Bits Buffer Format Fun List Nf_stdext QCheck QCheck_alcotest Rng Stats String Table Vclock
