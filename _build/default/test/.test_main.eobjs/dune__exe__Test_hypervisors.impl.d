test/test_hypervisors.ml: Alcotest Controls Field Int64 List Nf_cpu Nf_harness Nf_hv Nf_kvm Nf_sanitizer Nf_stdext Nf_validator Nf_vbox Nf_vmcb Nf_vmcs Nf_x86 Nf_xen String Vmcs
