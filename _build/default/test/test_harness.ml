(* Tests for the fuzz-harness VM: input layout, instruction templates,
   the executor's phases and ablation switches, and the AFL++-style
   fuzzing engine. *)

module Hv = Nf_hv.Hypervisor
module Exec = Nf_harness.Executor
module Layout = Nf_harness.Layout

let check = Alcotest.check
let features = Nf_cpu.Features.default

(* --- layout --- *)

let test_layout_partition () =
  (* Slices must not overlap and must fit the input. *)
  let slices =
    [ (Layout.init_off, Layout.init_len); (Layout.runtime_off, Layout.runtime_len);
      (Layout.vmcs_raw_off, Layout.vmcs_raw_len); (Layout.flips_off, Layout.flips_len);
      (Layout.msr_area_off, Layout.msr_area_len); (Layout.config_off, Layout.config_len) ]
  in
  let sorted = List.sort compare slices in
  let rec no_overlap = function
    | (o1, l1) :: ((o2, _) :: _ as rest) ->
        if o1 + l1 > o2 then Alcotest.failf "slices overlap at %d" o2;
        no_overlap rest
    | _ -> ()
  in
  no_overlap sorted;
  List.iter
    (fun (o, l) -> if o + l > Layout.total then Alcotest.fail "slice beyond input")
    slices

let test_vmcs_slice_holds_state () =
  check Alcotest.int "vmcs slice fits the 8000-bit state" Nf_vmcs.Vmcs.blob_bytes
    Layout.vmcs_raw_len

let test_cursor_cycles () =
  let c = Layout.cursor (Bytes.of_string "ab") in
  check Alcotest.int "a" (Char.code 'a') (c ());
  check Alcotest.int "b" (Char.code 'b') (c ());
  check Alcotest.int "wraps" (Char.code 'a') (c ())

let test_cursor_empty () =
  let c = Layout.cursor Bytes.empty in
  check Alcotest.int "zero" 0 (c ())

let test_config_of_input () =
  let b = Nf_fuzzer.Input.zero () in
  let f = Layout.config_of_input b in
  Alcotest.(check bool) "all-zero config disables ept" false f.Nf_cpu.Features.ept;
  Bytes.fill b Layout.config_off Layout.config_len '\xff';
  let f = Layout.config_of_input b in
  Alcotest.(check bool) "all-ones config enables ept" true f.Nf_cpu.Features.ept

(* --- templates --- *)

let test_templates_cover_classes () =
  let classes =
    List.sort_uniq compare
      (Array.to_list
         (Array.map (fun t -> t.Nf_harness.Templates.clazz) Nf_harness.Templates.l2_templates))
  in
  check Alcotest.int "all four Table 1 classes" 4 (List.length classes)

let test_table1_rows () =
  check Alcotest.int "four rows" 4 (List.length Nf_harness.Templates.table1)

let test_pick_l2_total () =
  (* Every template must build successfully from arbitrary byte input. *)
  let rng = Nf_stdext.Rng.create 5 in
  for _ = 1 to 2000 do
    ignore (Nf_harness.Templates.pick_l2 (fun () -> Nf_stdext.Rng.byte rng))
  done

let test_value64_little_endian () =
  let bytes = Bytes.of_string "\x01\x02\x03\x04\x05\x06\x07\x08" in
  let v = Nf_harness.Templates.value64 (Layout.cursor bytes) in
  check Alcotest.int64 "LE assembly" 0x0807060504030201L v

(* --- executor --- *)

let run_once ?(ablation = Exec.full_ablation) ?(input_seed = 1) target =
  let input = Nf_fuzzer.Input.random (Nf_stdext.Rng.create input_seed) in
  let san = Nf_sanitizer.Sanitizer.create () in
  let hv =
    match (target : Nf_agent.Agent.target) with
    | Kvm_intel -> Nf_kvm.Kvm.pack_intel ~features ~sanitizer:san
    | Kvm_amd -> Nf_kvm.Kvm.pack_amd ~features ~sanitizer:san
    | Xen_intel -> Nf_xen.Xen.pack_intel ~features ~sanitizer:san
    | Xen_amd -> Nf_xen.Xen.pack_amd ~features ~sanitizer:san
    | Vbox -> Nf_vbox.Vbox.pack ~features ~sanitizer:san
  in
  Exec.run ~hv
    ~vmx_validator:(Nf_validator.Validator.create Nf_cpu.Vmx_caps.alder_lake)
    ~svm_validator:(Nf_validator.Svm_validator.create Nf_cpu.Svm_caps.zen3)
    ~ablation ~features ~input

let test_executor_counts () =
  let o = run_once Kvm_intel in
  Alcotest.(check bool) "some L1 steps" true (o.Exec.l1_steps > 0);
  Alcotest.(check bool) "cost at least boot" true
    (o.Exec.cost_us >= Exec.boot_cost_us)

let test_executor_deterministic () =
  let a = run_once ~input_seed:7 Kvm_intel in
  let b = run_once ~input_seed:7 Kvm_intel in
  check Alcotest.int "same l1 steps" a.Exec.l1_steps b.Exec.l1_steps;
  check Alcotest.int "same entries" a.Exec.entries b.Exec.entries;
  check Alcotest.int64 "same cost" a.Exec.cost_us b.Exec.cost_us

let test_executor_no_validator_uses_golden () =
  (* Without the validator the template state is golden: entry always
     succeeds unless the (also random) MSR-load area kills it, so the
     area slice is zeroed here. *)
  let entered = ref 0 in
  for seed = 1 to 30 do
    let input = Nf_fuzzer.Input.random (Nf_stdext.Rng.create seed) in
    Bytes.fill input Layout.msr_area_off Layout.msr_area_len '\000';
    let san = Nf_sanitizer.Sanitizer.create () in
    let hv = Nf_kvm.Kvm.pack_intel ~features ~sanitizer:san in
    let o =
      Exec.run ~hv
        ~vmx_validator:(Nf_validator.Validator.create Nf_cpu.Vmx_caps.alder_lake)
        ~svm_validator:(Nf_validator.Svm_validator.create Nf_cpu.Svm_caps.zen3)
        ~ablation:
          { Exec.full_ablation with generation = Exec.Template; use_exec_harness = false }
        ~features ~input
    in
    if o.Exec.entries > 0 then incr entered
  done;
  check Alcotest.int "all golden runs enter" 30 !entered

let test_executor_fixed_template_without_harness () =
  let a =
    run_once ~input_seed:3 ~ablation:{ Exec.full_ablation with use_exec_harness = false }
      Kvm_intel
  in
  (* Fixed template: exactly the 8 canonical init ops. *)
  Alcotest.(check bool) "init ops not mutated" true (a.Exec.l1_steps <= 8 + 2 * Exec.max_l2_insns)

let test_executor_amd () =
  let entered = ref false in
  for seed = 1 to 20 do
    let o = run_once ~input_seed:seed Kvm_amd in
    if o.Exec.entries > 0 then entered := true
  done;
  Alcotest.(check bool) "AMD executor reaches L2" true !entered

let test_executor_runtime_runs () =
  let ran_l2 = ref false in
  for seed = 1 to 20 do
    let o = run_once ~input_seed:seed Kvm_intel in
    if o.Exec.l2_steps > 0 then ran_l2 := true
  done;
  Alcotest.(check bool) "runtime phase executes L2 code" true !ran_l2

let test_msr_area_generation () =
  let rng = Nf_stdext.Rng.create 5 in
  for _ = 1 to 100 do
    let input = Nf_fuzzer.Input.random rng in
    let area = Exec.generate_msr_area input in
    Alcotest.(check bool) "0..3 entries" true (Array.length area <= 3)
  done

(* --- fuzzer engine --- *)

let test_input_size () = check Alcotest.int "2KiB inputs" 2048 Nf_fuzzer.Input.size

let test_havoc_changes_input () =
  let rng = Nf_stdext.Rng.create 5 in
  let parent = Nf_fuzzer.Input.zero () in
  let child = Nf_fuzzer.Input.havoc rng parent in
  Alcotest.(check bool) "parent untouched" true
    (Bytes.equal parent (Nf_fuzzer.Input.zero ()));
  Alcotest.(check bool) "child differs (almost surely)" true
    (not (Bytes.equal child parent))

let test_fuzzer_guided_queue_growth () =
  let f = Nf_fuzzer.Fuzzer.create ~seed:1 () in
  Nf_fuzzer.Fuzzer.seed_input f (Nf_fuzzer.Input.zero ());
  let virgin_input = Nf_fuzzer.Fuzzer.next_input f in
  let bitmap = Nf_coverage.Coverage.Bitmap.create () in
  Nf_coverage.Coverage.Bitmap.record bitmap 42;
  let novel =
    Nf_fuzzer.Fuzzer.report f ~input:virgin_input ~bitmap ~now_us:0L ()
  in
  Alcotest.(check bool) "novel coverage queued" true novel;
  check Alcotest.int "queue grew" 2 (Nf_fuzzer.Fuzzer.queue_size f)

let test_fuzzer_crash_not_queued () =
  let f = Nf_fuzzer.Fuzzer.create ~seed:1 () in
  Nf_fuzzer.Fuzzer.seed_input f (Nf_fuzzer.Input.zero ());
  let input = Nf_fuzzer.Fuzzer.next_input f in
  let bitmap = Nf_coverage.Coverage.Bitmap.create () in
  Nf_coverage.Coverage.Bitmap.record bitmap 7;
  ignore (Nf_fuzzer.Fuzzer.report f ~input ~crashed:true ~bitmap ~now_us:0L ());
  check Alcotest.int "crashing input not queued" 1 (Nf_fuzzer.Fuzzer.queue_size f)

let test_fuzzer_blind_ignores_coverage () =
  let f = Nf_fuzzer.Fuzzer.create ~mode:Nf_fuzzer.Fuzzer.Blind ~seed:1 () in
  let bitmap = Nf_coverage.Coverage.Bitmap.create () in
  Nf_coverage.Coverage.Bitmap.record bitmap 3;
  let novel =
    Nf_fuzzer.Fuzzer.report f ~input:(Nf_fuzzer.Input.zero ()) ~bitmap ~now_us:0L ()
  in
  Alcotest.(check bool) "blind never reports novelty" false novel

let test_fuzzer_dedup_same_bitmap () =
  let f = Nf_fuzzer.Fuzzer.create ~seed:1 () in
  let bitmap = Nf_coverage.Coverage.Bitmap.create () in
  Nf_coverage.Coverage.Bitmap.record bitmap 3;
  let i = Nf_fuzzer.Input.zero () in
  ignore (Nf_fuzzer.Fuzzer.report f ~input:i ~bitmap ~now_us:0L ());
  Alcotest.(check bool) "same bitmap is not novel twice" false
    (Nf_fuzzer.Fuzzer.report f ~input:i ~bitmap ~now_us:0L ())

(* --- vCPU configurator --- *)

let test_config_of_bits () =
  let f = Nf_config.Vcpu_config.of_bits 0 in
  Alcotest.(check bool) "ept off" false f.Nf_cpu.Features.ept;
  let f = Nf_config.Vcpu_config.of_bits 0x3FFFF in
  Alcotest.(check bool) "ept on" true f.Nf_cpu.Features.ept

let test_config_normalized () =
  (* unrestricted without ept must be normalized away. *)
  let f = Nf_config.Vcpu_config.of_bits 0b10 in
  Alcotest.(check bool) "dependent disabled" false f.Nf_cpu.Features.unrestricted_guest

let test_config_flip_flag () =
  let f = Nf_cpu.Features.default in
  let f' = Nf_config.Vcpu_config.flip_flag f 0 in
  Alcotest.(check bool) "flipped" false f'.Nf_cpu.Features.ept

let test_adapters_render () =
  let f = Nf_cpu.Features.default in
  let s =
    Nf_config.Vcpu_config.Kvm_adapter.module_params ~vendor:Nf_cpu.Cpu_model.Intel f
  in
  Alcotest.(check bool) "kvm-intel params" true (String.length s > 10);
  let s = Nf_config.Vcpu_config.Xen_adapter.guest_cfg f in
  Alcotest.(check bool) "xen cfg" true (String.length s > 10);
  let s = Nf_config.Vcpu_config.Vbox_adapter.modifyvm f in
  Alcotest.(check bool) "vbox cfg" true (String.length s > 10)

let tests =
  [
    ("layout slices disjoint", `Quick, test_layout_partition);
    ("vmcs slice size", `Quick, test_vmcs_slice_holds_state);
    ("cursor cycles", `Quick, test_cursor_cycles);
    ("cursor on empty slice", `Quick, test_cursor_empty);
    ("config from input", `Quick, test_config_of_input);
    ("templates cover Table 1 classes", `Quick, test_templates_cover_classes);
    ("table1 rows", `Quick, test_table1_rows);
    ("pick_l2 total over random input", `Quick, test_pick_l2_total);
    ("value64 little-endian", `Quick, test_value64_little_endian);
    ("executor counts and cost", `Quick, test_executor_counts);
    ("executor deterministic per input", `Quick, test_executor_deterministic);
    ("ablated validator uses golden", `Quick, test_executor_no_validator_uses_golden);
    ("ablated harness keeps template", `Quick, test_executor_fixed_template_without_harness);
    ("executor on AMD", `Quick, test_executor_amd);
    ("runtime phase executes", `Quick, test_executor_runtime_runs);
    ("msr area generation bounds", `Quick, test_msr_area_generation);
    ("input size is 2KiB", `Quick, test_input_size);
    ("havoc copies parent", `Quick, test_havoc_changes_input);
    ("guided queue growth", `Quick, test_fuzzer_guided_queue_growth);
    ("crashes stay out of the queue", `Quick, test_fuzzer_crash_not_queued);
    ("blind mode ignores coverage", `Quick, test_fuzzer_blind_ignores_coverage);
    ("bitmap dedup", `Quick, test_fuzzer_dedup_same_bitmap);
    ("configurator bit array", `Quick, test_config_of_bits);
    ("configurator normalizes deps", `Quick, test_config_normalized);
    ("configurator flip", `Quick, test_config_flip_flag);
    ("adapters render", `Quick, test_adapters_render);
  ]
