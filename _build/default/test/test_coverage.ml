(* Tests for the coverage substrate and the sanitizer event stream. *)

module Cov = Nf_coverage.Coverage
module San = Nf_sanitizer.Sanitizer

let check = Alcotest.check

let make_region () =
  let r = Cov.create_region "test-region" in
  let p1 = Cov.probe r ~file:"a.c" ~lines:10 "p1" in
  let p2 = Cov.probe r ~file:"a.c" ~lines:5 "p2" in
  let p3 = Cov.probe r ~file:"b.c" ~lines:7 "p3" in
  (r, p1, p2, p3)

let test_region_totals () =
  let r, _, _, _ = make_region () in
  check Alcotest.int "total" 22 (Cov.total_lines r);
  check Alcotest.int "per-file" 15 (Cov.total_lines ~file:"a.c" r);
  check Alcotest.(list string) "files" [ "a.c"; "b.c" ] (Cov.files r)

let test_line_ranges_disjoint () =
  let r, p1, p2, _ = make_region () in
  ignore r;
  check Alcotest.int "p1 starts at 1" 1 p1.Cov.line_start;
  check Alcotest.int "p2 follows p1" 11 p2.Cov.line_start

let test_map_hit_and_pct () =
  let r, p1, p2, p3 = make_region () in
  let m = Cov.Map.create r in
  check (Alcotest.float 0.01) "empty" 0.0 (Cov.Map.coverage_pct m);
  Cov.Map.hit m p1;
  Cov.Map.hit m p1;
  check Alcotest.int "hit count" 2 (Cov.Map.hit_count m p1);
  check Alcotest.int "covered lines" 10 (Cov.Map.covered_lines m);
  Cov.Map.hit m p2;
  Cov.Map.hit m p3;
  check (Alcotest.float 0.01) "full" 100.0 (Cov.Map.coverage_pct m)

let test_map_reset () =
  let r, p1, _, _ = make_region () in
  let m = Cov.Map.create r in
  Cov.Map.hit m p1;
  Cov.Map.reset m;
  check Alcotest.int "reset" 0 (Cov.Map.covered_lines m)

let test_map_merge () =
  let r, p1, p2, _ = make_region () in
  let a = Cov.Map.create r and b = Cov.Map.create r in
  Cov.Map.hit a p1;
  Cov.Map.hit b p2;
  Cov.Map.merge a b;
  check Alcotest.int "merged lines" 15 (Cov.Map.covered_lines a);
  check Alcotest.int "b untouched" 5 (Cov.Map.covered_lines b)

let test_set_algebra () =
  let r, p1, p2, p3 = make_region () in
  let a = Cov.Map.create r and b = Cov.Map.create r in
  Cov.Map.hit a p1;
  Cov.Map.hit a p2;
  Cov.Map.hit b p2;
  Cov.Map.hit b p3;
  check Alcotest.int "a-b" 10 (Cov.Map.minus_lines a b);
  check Alcotest.int "b-a" 7 (Cov.Map.minus_lines b a);
  check Alcotest.int "a∩b" 5 (Cov.Map.inter_lines a b)

let test_uncovered () =
  let r, p1, _, _ = make_region () in
  let m = Cov.Map.create r in
  Cov.Map.hit m p1;
  check Alcotest.int "two uncovered" 2 (List.length (Cov.Map.uncovered m));
  check Alcotest.int "one uncovered in a.c" 1
    (List.length (Cov.Map.uncovered ~file:"a.c" m))

(* --- AFL bitmap --- *)

let test_bitmap_buckets () =
  check Alcotest.int "0" 0 (Cov.Bitmap.bucket 0);
  check Alcotest.int "1" 1 (Cov.Bitmap.bucket 1);
  check Alcotest.int "3" 4 (Cov.Bitmap.bucket 3);
  check Alcotest.int "100" 64 (Cov.Bitmap.bucket 100);
  check Alcotest.int "1000" 128 (Cov.Bitmap.bucket 1000)

let test_bitmap_new_bits () =
  let virgin = Cov.Bitmap.create_virgin () in
  let t = Cov.Bitmap.create () in
  Cov.Bitmap.record t 7;
  Alcotest.(check bool) "first sight is new" true (Cov.Bitmap.has_new_bits ~virgin t);
  Alcotest.(check bool) "second sight is not" false (Cov.Bitmap.has_new_bits ~virgin t);
  (* A different hit count bucket is novel again. *)
  let t2 = Cov.Bitmap.create () in
  for _ = 1 to 10 do
    Cov.Bitmap.record t2 7
  done;
  Alcotest.(check bool) "new bucket is new" true (Cov.Bitmap.has_new_bits ~virgin t2)

let test_bitmap_count_nonzero () =
  let t = Cov.Bitmap.create () in
  Cov.Bitmap.record t 1;
  Cov.Bitmap.record t 2;
  Alcotest.(check bool) "some edges" true (Cov.Bitmap.count_nonzero t >= 1)

(* --- sanitizer --- *)

let test_sanitizer_stream () =
  let s = San.create () in
  San.ubsan s "oob %d" 3;
  San.log_warn s "note";
  San.host_crash s "down";
  let es = San.events s in
  check Alcotest.int "three events" 3 (List.length es);
  Alcotest.(check bool) "has fatal" true (San.has_fatal s);
  Alcotest.(check bool) "has reportable" true (San.has_reportable s);
  let drained = San.drain s in
  check Alcotest.int "drained" 3 (List.length drained);
  check Alcotest.int "empty after drain" 0 (List.length (San.events s))

let test_sanitizer_classification () =
  Alcotest.(check bool) "log not reportable" false (San.is_reportable (San.Log_warn "x"));
  Alcotest.(check bool) "ubsan reportable" true (San.is_reportable (San.Ubsan "x"));
  Alcotest.(check bool) "ubsan not fatal" false (San.is_fatal (San.Ubsan "x"));
  Alcotest.(check bool) "gpf fatal" true (San.is_fatal (San.Gpf "x"));
  check Alcotest.string "kind" "Host Crash" (San.event_kind (San.Host_crash "x"))

(* --- instrumented hypervisor regions match the paper --- *)

let test_region_totals_match_paper () =
  check Alcotest.int "KVM Intel: 1,681 lines" 1681
    (Cov.total_lines Nf_kvm.Vmx_nested.region);
  check Alcotest.int "KVM AMD: 387 lines" 387
    (Cov.total_lines Nf_kvm.Svm_nested.region);
  check Alcotest.int "Xen Intel: 1,401 lines" 1401
    (Cov.total_lines Nf_xen.Vmx_nested.region);
  check Alcotest.int "Xen AMD: 794 lines" 794
    (Cov.total_lines Nf_xen.Svm_nested.region)

let tests =
  [
    ("region totals", `Quick, test_region_totals);
    ("line ranges consecutive", `Quick, test_line_ranges_disjoint);
    ("map hit and percentage", `Quick, test_map_hit_and_pct);
    ("map reset", `Quick, test_map_reset);
    ("map merge", `Quick, test_map_merge);
    ("set algebra (Table 2 rows)", `Quick, test_set_algebra);
    ("uncovered probes", `Quick, test_uncovered);
    ("bitmap buckets", `Quick, test_bitmap_buckets);
    ("bitmap new-bits", `Quick, test_bitmap_new_bits);
    ("bitmap count", `Quick, test_bitmap_count_nonzero);
    ("sanitizer stream", `Quick, test_sanitizer_stream);
    ("sanitizer classification", `Quick, test_sanitizer_classification);
    ("region totals match paper", `Quick, test_region_totals_match_paper);
  ]
