(* Tests for the AMD VMCB layout and store. *)

open Nf_vmcb

let check = Alcotest.check

let test_unique_names () =
  let names = List.map Vmcb.field_name Vmcb.all_fields in
  check Alcotest.int "names unique" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_areas_partition () =
  let count a =
    List.length (List.filter (fun f -> Vmcb.field_area f = a) Vmcb.all_fields)
  in
  check Alcotest.int "areas partition" Vmcb.field_count
    (count Vmcb.Control + count Vmcb.Save)

let test_control_before_save () =
  (* Control-area fields live below offset 0x400, save-area fields above:
     the real VMCB layout. *)
  List.iter
    (fun f ->
      let { Vmcb.offset; area; _ } = Vmcb.info f in
      match area with
      | Vmcb.Control ->
          if offset >= 0x400 then Alcotest.failf "control field beyond 0x400"
      | Vmcb.Save -> if offset < 0x400 then Alcotest.failf "save field below 0x400")
    Vmcb.all_fields

let test_write_truncates () =
  let v = Vmcb.create () in
  Vmcb.write v Vmcb.tlb_control 0x1FFL;
  check Alcotest.int64 "8-bit field truncated" 0xFFL (Vmcb.read v Vmcb.tlb_control)

let test_seg_fields () =
  List.iter
    (fun r ->
      ignore (Vmcb.seg_selector r);
      ignore (Vmcb.seg_attrib r);
      ignore (Vmcb.seg_limit r);
      ignore (Vmcb.seg_base r))
    [ Nf_x86.Seg.ES; CS; SS; DS; FS; GS; TR ]

let test_copy_independent () =
  let a = Vmcb.create () in
  Vmcb.write a Vmcb.rax 7L;
  let b = Vmcb.copy a in
  Vmcb.write b Vmcb.rax 9L;
  check Alcotest.int64 "original untouched" 7L (Vmcb.read a Vmcb.rax)

let test_hamming () =
  let a = Vmcb.create () and b = Vmcb.create () in
  check Alcotest.int "zero" 0 (Vmcb.hamming a b);
  Vmcb.set_bit b Vmcb.efer Nf_x86.Efer.svme true;
  check Alcotest.int "one" 1 (Vmcb.hamming a b)

let test_exit_names () =
  check Alcotest.string "invalid" "VMEXIT_INVALID" (Vmcb.Exit.name Vmcb.Exit.invalid);
  check Alcotest.string "avic" "VMEXIT_AVIC_NOACCEL"
    (Vmcb.Exit.name Vmcb.Exit.avic_noaccel)

let test_vintr_bits_distinct () =
  let bits =
    [ Vmcb.Vintr.v_irq; Vmcb.Vintr.v_gif; Vmcb.Vintr.v_ign_tpr;
      Vmcb.Vintr.v_intr_masking; Vmcb.Vintr.v_gif_enable; Vmcb.Vintr.avic_enable ]
  in
  check Alcotest.int "distinct" (List.length bits)
    (List.length (List.sort_uniq compare bits))

let test_find_exn () =
  Alcotest.check_raises "unknown" (Invalid_argument "Vmcb field \"NOPE\" not defined")
    (fun () -> ignore (Vmcb.find_exn "NOPE"))

let prop_roundtrip_bits =
  QCheck.Test.make ~name:"vmcb: write/read roundtrip within width" ~count:200
    QCheck.(pair small_int int64)
    (fun (i, v) ->
      let f = List.nth Vmcb.all_fields (abs i mod Vmcb.field_count) in
      let vm = Vmcb.create () in
      Vmcb.write vm f v;
      Vmcb.read vm f = Nf_stdext.Bits.truncate v (Vmcb.field_bits f))

let tests =
  [
    ("field names unique", `Quick, test_unique_names);
    ("areas partition", `Quick, test_areas_partition);
    ("layout: control below save", `Quick, test_control_before_save);
    ("write truncates", `Quick, test_write_truncates);
    ("segment field lookup", `Quick, test_seg_fields);
    ("copy independent", `Quick, test_copy_independent);
    ("hamming", `Quick, test_hamming);
    ("exit code names", `Quick, test_exit_names);
    ("vintr bits distinct", `Quick, test_vintr_bits_distinct);
    ("find_exn unknown raises", `Quick, test_find_exn);
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_roundtrip_bits ]
