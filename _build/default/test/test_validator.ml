(* Tests for the VM state validator: rounding soundness (the central
   property — every rounded state passes the physical CPU's checks),
   idempotence, boundary mutation, the hardware-oracle self-correction
   loop, the Bochs regression bugs, and the Fig. 5 distributions. *)

open Nf_vmcs

let check = Alcotest.check
let caps = Nf_cpu.Vmx_caps.alder_lake
let scaps = Nf_cpu.Svm_caps.zen3

let random_vmcs seed =
  let rng = Nf_stdext.Rng.create seed in
  Nf_validator.Distribution.random_vmcs rng

(* --- rounding --- *)

let test_round_makes_enterable () =
  let v = Nf_validator.Validator.create caps in
  for seed = 1 to 300 do
    let s = random_vmcs seed in
    Nf_validator.Validator.round v s;
    match Nf_cpu.Vmx_cpu.enter ~caps s with
    | Nf_cpu.Vmx_cpu.Entered _ -> ()
    | o ->
        Alcotest.failf "rounded state %d rejected: %s" seed
          (Format.asprintf "%a" Nf_cpu.Vmx_cpu.pp_outcome o)
  done

let prop_round_enterable =
  QCheck.Test.make ~name:"validator: round => hardware enters" ~count:200
    QCheck.int (fun seed ->
      let v = Nf_validator.Validator.create caps in
      let s = random_vmcs seed in
      Nf_validator.Validator.round v s;
      match Nf_cpu.Vmx_cpu.enter ~caps s with
      | Nf_cpu.Vmx_cpu.Entered _ -> true
      | _ -> false)

let prop_round_idempotent =
  QCheck.Test.make ~name:"validator: round idempotent" ~count:200 QCheck.int
    (fun seed ->
      let v = Nf_validator.Validator.create caps in
      let s = random_vmcs seed in
      Nf_validator.Validator.round v s;
      let s2 = Vmcs.copy s in
      Nf_validator.Validator.round v s2;
      Vmcs.equal s s2)

let test_round_masked_caps () =
  (* Rounding into ept=0 capabilities must clear the EPT control. *)
  let features = { Nf_cpu.Features.default with ept = false } in
  let mcaps = Nf_cpu.Vmx_caps.apply_features caps features in
  let v = Nf_validator.Validator.create mcaps in
  for seed = 1 to 50 do
    let s = random_vmcs seed in
    Nf_validator.Validator.round v s;
    if Vmcs.read_bit s Field.proc_based_ctls2 Controls.Proc2.enable_ept then
      Alcotest.fail "EPT control survived masked rounding"
  done

let test_round_golden_still_enters () =
  let v = Nf_validator.Validator.create caps in
  let g = Nf_validator.Golden.vmcs caps in
  Nf_validator.Validator.round v g;
  match Nf_cpu.Vmx_cpu.enter ~caps g with
  | Nf_cpu.Vmx_cpu.Entered _ -> ()
  | _ -> Alcotest.fail "rounded golden rejected"

let test_group_checks_pass_after_round () =
  let v = Nf_validator.Validator.create caps in
  let s = random_vmcs 42 in
  Nf_validator.Validator.round v s;
  (match Nf_validator.Validator.vmenter_load_check_vm_controls v s with
  | Ok () -> ()
  | Error (c, m) -> Alcotest.failf "controls: %s %s" c.Nf_cpu.Vmx_checks.id m);
  (match Nf_validator.Validator.vmenter_load_check_host_state v s with
  | Ok () -> ()
  | Error (c, m) -> Alcotest.failf "host: %s %s" c.Nf_cpu.Vmx_checks.id m);
  match Nf_validator.Validator.vmenter_load_check_guest_state v s with
  | Ok () -> ()
  | Error (c, m) -> Alcotest.failf "guest: %s %s" c.Nf_cpu.Vmx_checks.id m

(* --- boundary mutation --- *)

let test_mutation_flip_count () =
  let rng = Nf_stdext.Rng.create 7 in
  for _ = 1 to 200 do
    let s = random_vmcs (Nf_stdext.Rng.int rng 1000) in
    let flips = Nf_validator.Mutation.mutate (Nf_validator.Mutation.of_rng rng) s in
    let n = List.length flips in
    if n < 1 || n > 24 then Alcotest.failf "flip count out of range: %d" n
  done

let test_mutation_never_touches_exit_info () =
  let rng = Nf_stdext.Rng.create 8 in
  for _ = 1 to 500 do
    let s = random_vmcs 1 in
    let flips = Nf_validator.Mutation.mutate (Nf_validator.Mutation.of_rng rng) s in
    List.iter
      (fun (f : Nf_validator.Mutation.flip) ->
        if Field.group f.field = Field.Exit_info then
          Alcotest.failf "mutated read-only field %s" (Field.name f.field))
      flips
  done

let test_mutation_respects_bit_domain () =
  let rng = Nf_stdext.Rng.create 9 in
  for _ = 1 to 500 do
    let s = random_vmcs 1 in
    let flips = Nf_validator.Mutation.mutate (Nf_validator.Mutation.of_rng rng) s in
    List.iter
      (fun (f : Nf_validator.Mutation.flip) ->
        if Field.name f.field = "GUEST_ACTIVITY_STATE" && f.bit > 1 then
          Alcotest.fail "activity flip outside domain";
        if f.bit >= Field.bits f.field then Alcotest.fail "flip beyond width")
      flips
  done

let test_mutation_deterministic_from_bytes () =
  let bytes = Bytes.of_string (String.init 64 (fun i -> Char.chr (i * 3 land 0xFF))) in
  let s1 = random_vmcs 1 and s2 = random_vmcs 1 in
  ignore (Nf_validator.Mutation.mutate (Nf_validator.Mutation.of_bytes bytes) s1);
  ignore (Nf_validator.Mutation.mutate (Nf_validator.Mutation.of_bytes bytes) s2);
  Alcotest.(check bool) "same input, same flips" true (Vmcs.equal s1 s2)

let test_generate_pipeline () =
  let v = Nf_validator.Validator.create caps in
  let rng = Nf_stdext.Rng.create 10 in
  let raw = Nf_stdext.Rng.bytes rng Vmcs.blob_bytes in
  let state, flips =
    Nf_validator.Mutation.generate v ~raw (Nf_validator.Mutation.of_rng rng)
  in
  Alcotest.(check bool) "some flips applied" true (List.length flips >= 1);
  (* The state is near-boundary: un-flipping every flip restores a fully
     valid state. *)
  List.iter
    (fun (f : Nf_validator.Mutation.flip) -> Vmcs.flip_bit state f.field f.bit)
    (List.rev flips);
  match Nf_cpu.Vmx_cpu.enter ~caps state with
  | Nf_cpu.Vmx_cpu.Entered _ -> ()
  | _ -> Alcotest.fail "un-flipped state should be valid"

(* --- oracle self-correction (§3.4) --- *)

let test_self_check_agrees_on_golden () =
  let v = Nf_validator.Validator.create caps in
  match Nf_validator.Validator.self_check v (Nf_validator.Golden.vmcs caps) with
  | Nf_validator.Validator.Agree -> ()
  | _ -> Alcotest.fail "golden should agree"

let test_self_check_learns_quirk () =
  let v = Nf_validator.Validator.create caps in
  let w = (Nf_validator.Witness.find_vmx "guest.ia32e_pae").build caps in
  (match Nf_validator.Validator.self_check v w with
  | Nf_validator.Validator.Model_too_strict id ->
      check Alcotest.string "learned the PAE quirk" "guest.ia32e_pae" id
  | _ -> Alcotest.fail "expected Model_too_strict");
  check Alcotest.int "one correction" 1 v.Nf_validator.Validator.corrections;
  (* Second encounter: the model now agrees with hardware. *)
  match Nf_validator.Validator.self_check v w with
  | Nf_validator.Validator.Agree -> ()
  | _ -> Alcotest.fail "quirk should be learned"

let test_self_check_rejects_agree () =
  let v = Nf_validator.Validator.create caps in
  let w = (Nf_validator.Witness.find_vmx "guest.rflags").build caps in
  match Nf_validator.Validator.self_check v w with
  | Nf_validator.Validator.Agree -> ()
  | _ -> Alcotest.fail "both model and hardware reject: agree"

(* --- Bochs regression bugs --- *)

let test_bochs_bug1_too_strict () =
  let w = Nf_validator.Bochs_bugs.witness_bug1 caps in
  (* Legacy (pre-patch) model rejects... *)
  (match Nf_validator.Bochs_bugs.check_ss_rpl Nf_validator.Bochs_bugs.Legacy w with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "legacy model should reject");
  (* ...patched model and hardware accept. *)
  (match Nf_validator.Bochs_bugs.check_ss_rpl Nf_validator.Bochs_bugs.Patched w with
  | Ok () -> ()
  | Error m -> Alcotest.failf "patched model should accept: %s" m);
  match Nf_cpu.Vmx_cpu.enter ~caps w with
  | Nf_cpu.Vmx_cpu.Entered _ -> ()
  | _ -> Alcotest.fail "hardware accepts an unusable SS with odd RPL"

let test_bochs_bug2_too_lax () =
  let w = Nf_validator.Bochs_bugs.witness_bug2 caps in
  (* Legacy model accepts the inconsistent expand-down limit... *)
  (match
     Nf_validator.Bochs_bugs.check_data_limit Nf_validator.Bochs_bugs.Legacy w
       Nf_x86.Seg.DS
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "legacy model should accept (the bug)");
  (* ...patched model rejects, like hardware. *)
  (match
     Nf_validator.Bochs_bugs.check_data_limit Nf_validator.Bochs_bugs.Patched w
       Nf_x86.Seg.DS
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "patched model should reject");
  match Nf_cpu.Vmx_cpu.enter ~caps w with
  | Nf_cpu.Vmx_cpu.Entry_fail_guest _ -> ()
  | o -> Alcotest.failf "hardware should reject: %s" (Nf_cpu.Vmx_cpu.outcome_name o)

(* --- SVM validator --- *)

let random_vmcb seed =
  let rng = Nf_stdext.Rng.create seed in
  let v = Nf_vmcb.Vmcb.create () in
  List.iter
    (fun f ->
      Nf_vmcb.Vmcb.write v f
        (Nf_stdext.Bits.truncate (Nf_stdext.Rng.bits64 rng)
           (Nf_vmcb.Vmcb.field_bits f)))
    Nf_vmcb.Vmcb.all_fields;
  v

let prop_svm_round_enterable =
  QCheck.Test.make ~name:"svm validator: round => vmrun enters" ~count:200
    QCheck.int (fun seed ->
      let v = Nf_validator.Svm_validator.create scaps in
      let b = random_vmcb seed in
      Nf_validator.Svm_validator.round v b;
      match Nf_cpu.Svm_cpu.vmrun ~caps:scaps b with
      | Nf_cpu.Svm_cpu.Entered -> true
      | _ -> false)

let test_svm_round_preserves_lme_nopg () =
  (* The validator must NOT round away the EFER.LME && !CR0.PG ambiguity
     — the boundary state behind the Xen bug. *)
  let v = Nf_validator.Svm_validator.create scaps in
  let b = Nf_validator.Golden.vmcb scaps in
  Nf_vmcb.Vmcb.set_bit b Nf_vmcb.Vmcb.cr0 Nf_x86.Cr0.pg false;
  Nf_validator.Svm_validator.round v b;
  Alcotest.(check bool) "still LME && !PG" true (Nf_cpu.Svm_cpu.lme_without_paging b)

let test_svm_self_check () =
  let v = Nf_validator.Svm_validator.create scaps in
  match Nf_validator.Svm_validator.self_check v (Nf_validator.Golden.vmcb scaps) with
  | Nf_validator.Svm_validator.Agree -> ()
  | _ -> Alcotest.fail "golden vmcb should agree"

(* --- distributions (Fig. 5 shape) --- *)

let test_distribution_shapes () =
  let samples = 300 in
  let d1 = Nf_validator.Distribution.random_vs_validated ~caps ~samples ~seed:1 in
  let d2 = Nf_validator.Distribution.default_vs_validated ~caps ~samples ~seed:2 in
  let d3 = Nf_validator.Distribution.pairwise ~caps ~samples ~seed:3 in
  Alcotest.(check bool) "random->valid furthest" true (d1.mean > d3.mean);
  Alcotest.(check bool) "default->valid closest" true (d2.mean < d3.mean);
  Alcotest.(check bool) "all positive" true (d2.mean > 0.0);
  check Alcotest.int "sample counts" samples d1.samples

let test_golden_is_valid_per_checks () =
  let g = Nf_validator.Golden.vmcs caps in
  match
    Nf_cpu.Vmx_checks.run_all { Nf_cpu.Vmx_checks.caps; vmcs = g; entry_msr_load = [||] }
  with
  | Ok () -> ()
  | Error (c, m) -> Alcotest.failf "golden fails %s: %s" c.Nf_cpu.Vmx_checks.id m

let test_witness_table_covers_most_checks () =
  (* Every check id referenced by a witness exists, and most checks have
     a witness. *)
  List.iter
    (fun (w : Nf_validator.Witness.t) -> ignore (Nf_cpu.Vmx_checks.by_id w.check_id))
    Nf_validator.Witness.vmx;
  let covered = List.length Nf_validator.Witness.vmx in
  let total = List.length Nf_cpu.Vmx_checks.all in
  Alcotest.(check bool)
    (Printf.sprintf "witnesses cover most checks (%d/%d)" covered total)
    true
    (covered * 100 / total >= 90)

(* Rounding must repair every targeted violation: for each witness
   (a golden state with exactly one rule broken), round restores an
   enterable state. *)
let witness_round_case (w : Nf_validator.Witness.t) =
  ( "round repairs " ^ w.check_id,
    `Quick,
    fun () ->
      let vmcs = w.build caps in
      let v = Nf_validator.Validator.create caps in
      Nf_validator.Validator.round v vmcs;
      match Nf_cpu.Vmx_cpu.enter ~caps vmcs with
      | Nf_cpu.Vmx_cpu.Entered _ -> ()
      | o ->
          Alcotest.failf "round failed to repair %s: %s" w.check_id
            (Nf_cpu.Vmx_cpu.outcome_name o) )

let svm_witness_round_case (w : Nf_validator.Witness.svm_t) =
  ( "svm round repairs " ^ w.svm_check_id,
    `Quick,
    fun () ->
      let vmcb = w.svm_build scaps in
      let v = Nf_validator.Svm_validator.create scaps in
      Nf_validator.Svm_validator.round v vmcb;
      match Nf_cpu.Svm_cpu.vmrun ~caps:scaps vmcb with
      | Nf_cpu.Svm_cpu.Entered -> ()
      | Vmexit_invalid { msg; _ } ->
          Alcotest.failf "svm round failed to repair %s: %s" w.svm_check_id msg )

let tests =
  [
    ("round makes states enterable", `Quick, test_round_makes_enterable);
    ("round into masked caps", `Quick, test_round_masked_caps);
    ("round keeps golden enterable", `Quick, test_round_golden_still_enters);
    ("group check functions pass after round", `Quick, test_group_checks_pass_after_round);
    ("mutation: 1..24 flips", `Quick, test_mutation_flip_count);
    ("mutation: read-only fields untouched", `Quick, test_mutation_never_touches_exit_info);
    ("mutation: respects bit domains", `Quick, test_mutation_respects_bit_domain);
    ("mutation: deterministic from input", `Quick, test_mutation_deterministic_from_bytes);
    ("generate: boundary pipeline", `Quick, test_generate_pipeline);
    ("self-check: agrees on golden", `Quick, test_self_check_agrees_on_golden);
    ("self-check: learns the PAE quirk", `Quick, test_self_check_learns_quirk);
    ("self-check: agree on common rejects", `Quick, test_self_check_rejects_agree);
    ("bochs bug 1 (too strict)", `Quick, test_bochs_bug1_too_strict);
    ("bochs bug 2 (too lax)", `Quick, test_bochs_bug2_too_lax);
    ("svm round preserves LME&&!PG", `Quick, test_svm_round_preserves_lme_nopg);
    ("svm self-check golden", `Quick, test_svm_self_check);
    ("fig5 distribution shapes", `Quick, test_distribution_shapes);
    ("golden valid per spec checks", `Quick, test_golden_is_valid_per_checks);
    ("witness table coverage", `Quick, test_witness_table_covers_most_checks);
  ]
  @ List.map witness_round_case Nf_validator.Witness.vmx
  @ List.map svm_witness_round_case Nf_validator.Witness.svm
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_round_enterable; prop_round_idempotent; prop_svm_round_enterable ]
