(* Command-line front end.

     necofuzz fuzz --target kvm-intel --hours 12 --seed 3
     necofuzz fuzz --target kvm-intel --hours 48 --jobs 4  (parallel workers)
     necofuzz fuzz --target vbox --hours 4          (black-box)
     necofuzz fuzz --target kvm-amd --no-validator  (ablation)
     necofuzz experiment t2 --full
     necofuzz list-checks *)

open Cmdliner

let target_conv =
  let parse s =
    match Necofuzz.target_of_string s with
    | Ok t -> Ok t
    | Error msg -> Error (`Msg msg)
  in
  let print ppf t = Format.fprintf ppf "%s" (Necofuzz.Agent.target_name t) in
  Arg.conv (parse, print)

(* --- live status server plumbing (shared by fuzz and fleet lead) --- *)

let sockaddr_name = function
  | Unix.ADDR_UNIX path -> "unix:" ^ path
  | Unix.ADDR_INET (host, port) ->
      Printf.sprintf "tcp:%s:%d" (Unix.string_of_inet_addr host) port

(* Resolve --serve ADDR / --status-port N into a bind address.  The two
   flags are alternative spellings (exactly one may be given); both
   malformed addresses and out-of-range ports are usage errors. *)
let resolve_serve_addr ~serve ~status_port =
  match (serve, status_port) with
  | None, None -> None
  | Some _, Some _ ->
      Format.eprintf
        "necofuzz: --serve and --status-port are mutually exclusive@.";
      exit 2
  | Some s, None -> (
      match Necofuzz.Fleet.parse_addr s with
      | Ok addr -> Some addr
      | Error msg ->
          Format.eprintf "necofuzz: --serve: %s@." msg;
          exit 2)
  | None, Some p ->
      if p < 1 || p > 65535 then begin
        Format.eprintf
          "necofuzz: --status-port must be within 1-65535 (got %d)@." p;
        exit 2
      end;
      Some (Unix.ADDR_INET (Unix.inet_addr_loopback, p))

(* Start the HTTP status server when an address was requested.  [init]
   populates the board before the accept thread exists, so the pages
   are never observably missing.  A bind failure is a runtime error
   (exit 1), not a usage error: the flags were well-formed, the port
   just was not ours to take. *)
let start_status_server ?(init = fun (_ : Necofuzz.Obs.Serve.board) -> ())
    = function
  | None -> None
  | Some addr -> (
      let board = Necofuzz.Obs.Serve.board () in
      init board;
      match
        Necofuzz.Obs.Serve.create ~addr
          ~handler:(Necofuzz.Obs.Serve.board_handler board)
      with
      | Ok srv ->
          Format.printf "serving /metrics /status /healthz on %s@."
            (sockaddr_name (Necofuzz.Obs.Serve.addr srv));
          Some (srv, board)
      | Error msg ->
          Format.eprintf "necofuzz: status server: %s@." msg;
          exit 1)

(* The /status page of a single-process campaign: same shape as the
   fleet leader's, one row per worker. *)
let local_status_json ~target ~jobs rows =
  let module J = Nf_stdext.Json in
  let row w (s : Necofuzz.Engine.snapshot option) =
    let tele =
      match s with
      | None ->
          [ ("virtual_hours", J.Null); ("coverage_pct", J.Null);
            ("execs", J.Null); ("queue", J.Null); ("crashes", J.Null);
            ("execs_per_sec", J.Null) ]
      | Some s ->
          [ ("virtual_hours", J.Float s.Necofuzz.Engine.virtual_hours);
            ("coverage_pct", J.Float s.coverage_pct);
            ("execs", J.Int s.snap_execs); ("queue", J.Int s.queue);
            ("crashes", J.Int s.snap_crashes);
            ("execs_per_sec", J.Float s.execs_per_sec) ]
    in
    J.Obj
      (( "worker", J.Int w )
       :: ("target", J.String (Necofuzz.Engine.target_slug target))
       :: tele)
  in
  J.to_string
    (J.Obj
       [
         ("jobs", J.Int jobs);
         ("workers", J.Arr (Array.to_list (Array.mapi row rows)));
       ])

(* The /metrics page of a single-process campaign: per-worker labelled
   registries (the engine's own registry sequentially; synthetic
   worker/... gauges from barrier snapshots in parallel, where the live
   registries belong to the worker domains). *)
let local_prometheus ~target regs =
  let slug = Necofuzz.Engine.target_slug target in
  Necofuzz.Obs.Metrics.prometheus
    (List.mapi
       (fun w reg -> ([ ("worker", string_of_int w); ("target", slug) ], reg))
       regs)

let gauges_of_snapshot (s : Necofuzz.Engine.snapshot) =
  let reg = Necofuzz.Obs.Metrics.create () in
  Necofuzz.Obs.Metrics.set_gauge reg "worker/virtual_hours"
    s.Necofuzz.Engine.virtual_hours;
  Necofuzz.Obs.Metrics.set_gauge reg "worker/coverage_pct" s.coverage_pct;
  Necofuzz.Obs.Metrics.set_gauge reg "worker/execs_per_sec" s.execs_per_sec;
  reg

let fuzz_cmd =
  let target =
    Arg.(
      value
      & opt target_conv Necofuzz.Kvm_intel
      & info [ "target"; "t" ] ~docv:"TARGET"
          ~doc:"L0 hypervisor: kvm-intel, kvm-amd, xen-intel, xen-amd, vbox.")
  in
  let hours =
    Arg.(
      value & opt float 12.0
      & info [ "hours" ] ~docv:"H" ~doc:"Virtual campaign duration in hours.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")
  in
  let blind =
    Arg.(
      value & flag
      & info [ "blind" ] ~doc:"Disable coverage guidance (black-box mode).")
  in
  let no_harness =
    Arg.(
      value & flag
      & info [ "no-exec-harness" ]
          ~doc:"Ablation: freeze the VM execution harness templates.")
  in
  let no_validator =
    Arg.(
      value & flag
      & info [ "no-validator" ] ~doc:"Ablation: disable the VM state validator.")
  in
  let no_configurator =
    Arg.(
      value & flag
      & info [ "no-configurator" ] ~doc:"Ablation: disable the vCPU configurator.")
  in
  let corpus_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus-dir"; "o" ] ~docv:"DIR"
          ~doc:
            "Persist crash reproducers and a campaign summary to DIR.  With \
             --corpus durable, also hosts the durable input store \
             (DIR/store).")
  in
  let corpus_kind =
    Arg.(
      value & opt string "queue"
      & info [ "corpus" ] ~docv:"KIND"
          ~doc:
            "Corpus implementation: queue (default AFL-style round-robin), \
             markov (edge-rarity scheduling), mab (UCB1 bandit energy), or \
             durable (queue plus an on-disk store under --corpus-dir/store, \
             replayed by later campaigns).  Ignored with --resume: the \
             checkpoint carries its own corpus.")
  in
  let minimize =
    Arg.(
      value & flag
      & info [ "minimize" ]
          ~doc:"Minimize each crash reproducer before reporting (afl-tmin style).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Parallel fuzzing workers (AFL++ -M/-S topology on OCaml \
             domains).  Workers sync corpus and coverage periodically; \
             results merge deterministically, and --jobs 1 is identical to \
             the sequential engine.")
  in
  let sync_hours =
    Arg.(
      value
      & opt (some float) None
      & info [ "sync-hours" ] ~docv:"H"
          ~doc:
            "Virtual hours between worker sync barriers (default: the \
             checkpoint interval).  Only meaningful with --jobs > 1.")
  in
  let checkpoint_hours =
    Arg.(
      value
      & opt (some float) None
      & info [ "checkpoint-hours" ] ~docv:"H"
          ~doc:
            "Virtual hours between campaign checkpoints (timeline samples \
             and, with --checkpoint-dir, on-disk saves).")
  in
  let checkpoint_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint-dir" ] ~docv:"DIR"
          ~doc:
            "Save the full campaign state to DIR/checkpoint.bin (atomically) \
             at every checkpoint interval; resume later with --resume.")
  in
  let resume =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Resume a campaign from a checkpoint file.  The campaign \
             configuration (target, seed, duration, faults) comes from the \
             checkpoint; the resumed run is bit-identical to one that was \
             never interrupted.")
  in
  let fault_rate =
    Arg.(
      value & opt float 0.0
      & info [ "fault-rate" ] ~docv:"P"
          ~doc:
            "Deterministic fault injection: fault each hypervisor \
             interaction independently with probability P (host crashes, VM \
             kills, hangs, coverage-read failures).")
  in
  let fault_seed =
    Arg.(
      value & opt int 0
      & info [ "fault-seed" ] ~docv:"N"
          ~doc:
            "Seed of the fault-injection stream (independent of --seed); \
             same seeds, same faults.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write the campaign's typed event stream as a Chrome trace-event \
             JSON file, loadable in chrome://tracing and Perfetto.  \
             Timestamps are virtual microseconds; tracing is inert (a traced \
             campaign is bit-identical to an untraced one).  With --jobs > 1 \
             only supervisor-level events (worker sync, recovery, \
             abandonment) are traced.")
  in
  let trace_jsonl =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-jsonl" ] ~docv:"FILE"
          ~doc:
            "Stream the typed event stream as one JSON object per line \
             (machine-readable; same inertness guarantees as --trace).")
  in
  let stats_interval =
    Arg.(
      value
      & opt (some float) None
      & info [ "stats-interval" ] ~docv:"H"
          ~doc:
            "Virtual hours between stats refreshes: print a progress line \
             and refresh the AFL++-style fuzzer_stats / plot_data files in \
             the stats directory.  With --jobs > 1 stats follow the sync \
             barriers instead.")
  in
  let stats_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-dir" ] ~docv:"DIR"
          ~doc:
            "Directory for the fuzzer_stats and plot_data files (default: \
             the current directory when --stats-interval is given).")
  in
  let differential =
    Arg.(
      value & flag
      & info [ "differential" ]
          ~doc:
            "Replay every execution's VM state through the cross-hypervisor \
             differential oracle (silicon model, legacy Bochs checks, every \
             same-vendor L0 model) and report classified divergences \
             (too-strict / too-lax / exit-mismatch).  Inert: the fuzzing \
             trajectory is identical with or without the flag.")
  in
  let serve =
    Arg.(
      value
      & opt (some string) None
      & info [ "serve" ] ~docv:"ADDR"
          ~doc:
            "Serve live campaign status over HTTP while fuzzing: \
             $(b,/metrics) (Prometheus text exposition), $(b,/status) \
             (JSON) and $(b,/healthz) on ADDR (unix:PATH or \
             tcp:HOST:PORT).  Inert: a served campaign is bit-identical \
             to an unserved one.")
  in
  let status_port =
    Arg.(
      value
      & opt (some int) None
      & info [ "status-port" ] ~docv:"PORT"
          ~doc:
            "Shorthand for --serve tcp:127.0.0.1:PORT (mutually exclusive \
             with --serve).")
  in
  let batch =
    Arg.(
      value
      & opt int Necofuzz.Engine.default_batch
      & info [ "batch" ] ~docv:"N"
          ~doc:
            "Persistent-mode batch size: executions per $(b,step_batch) \
             call.  Amortizes dispatch, coverage-gauge and sink work; a \
             campaign is bit-identical at any batch size (digests, \
             checkpoints, metrics and event streams all match batch 1).")
  in
  let run target hours seed blind no_harness no_validator no_configurator
      corpus_dir corpus_kind minimize jobs sync_hours checkpoint_hours
      checkpoint_dir resume fault_rate fault_seed trace trace_jsonl
      stats_interval stats_dir differential serve status_port batch =
    if jobs < 1 then begin
      Format.eprintf "necofuzz: --jobs must be at least 1 (got %d)@." jobs;
      exit 2
    end;
    if hours <= 0.0 then begin
      Format.eprintf "necofuzz: --hours must be positive (got %g)@." hours;
      exit 2
    end;
    if batch < 1 then begin
      Format.eprintf "necofuzz: --batch must be at least 1 (got %d)@." batch;
      exit 2
    end;
    (match sync_hours with
    | Some h when h <= 0.0 ->
        Format.eprintf "necofuzz: --sync-hours must be positive (got %g)@." h;
        exit 2
    | _ -> ());
    (match checkpoint_hours with
    | Some h when h <= 0.0 ->
        Format.eprintf "necofuzz: --checkpoint-hours must be positive (got %g)@."
          h;
        exit 2
    | _ -> ());
    if not (fault_rate >= 0.0 && fault_rate <= 1.0) then begin
      Format.eprintf "necofuzz: --fault-rate must be within [0, 1] (got %g)@."
        fault_rate;
      exit 2
    end;
    (match stats_interval with
    | Some h when h <= 0.0 ->
        Format.eprintf "necofuzz: --stats-interval must be positive (got %g)@."
          h;
        exit 2
    | _ -> ());
    let serve_addr = resolve_serve_addr ~serve ~status_port in
    (* --corpus validation mirrors the --exp convention: unknown values
       (and durable without a store directory) are usage errors, exit 2. *)
    let corpus =
      let store_dir =
        Option.map (fun d -> Filename.concat d "store") corpus_dir
      in
      match Necofuzz.Corpus.spec_of_string ?dir:store_dir corpus_kind with
      | Ok spec -> spec
      | Error msg ->
          Format.eprintf "necofuzz: --corpus: %s%s@." msg
            (if corpus_kind = "durable" && corpus_dir = None then
               " (pass --corpus-dir)"
             else "");
          exit 2
    in
    if jobs > 1 && (checkpoint_dir <> None || resume <> None) then begin
      Format.eprintf
        "necofuzz: --checkpoint-dir/--resume require --jobs 1 (parallel \
         campaigns checkpoint per worker at sync barriers)@.";
      exit 2
    end;
    (match checkpoint_dir with
    | Some dir -> (
        match Necofuzz.Persist.mkdir_p dir with
        | Ok () -> ()
        | Error msg ->
            Format.eprintf "necofuzz: --checkpoint-dir: %s@." msg;
            exit 1)
    | None -> ());
    (* --stats-interval without --stats-dir lands the stats files in the
       current directory, AFL++-style. *)
    let stats_dir =
      match (stats_dir, stats_interval) with
      | (Some _ as d), _ -> d
      | None, Some _ -> Some Filename.current_dir_name
      | None, None -> None
    in
    (match stats_dir with
    | Some dir -> (
        match Necofuzz.Persist.mkdir_p dir with
        | Ok () -> ()
        | Error msg ->
            Format.eprintf "necofuzz: --stats-dir: %s@." msg;
            exit 1)
    | None -> ());
    let sink =
      let sinks =
        (match trace with
        | Some path -> [ Necofuzz.Obs.Sink.chrome_trace ~path () ]
        | None -> [])
        @
        match trace_jsonl with
        | Some path -> [ Necofuzz.Obs.Sink.jsonl ~path ]
        | None -> []
      in
      match sinks with
      | [] -> Necofuzz.Obs.Sink.null
      | [ s ] -> s
      | ss -> Necofuzz.Obs.Sink.tee ss
    in
    (* Seed the board before the accept loop starts so /metrics and
       /status answer from the very first request, even if the first
       engine refresh has not landed yet. *)
    let server =
      start_status_server serve_addr ~init:(fun board ->
          let regs =
            List.init jobs (fun _ ->
                let r = Necofuzz.Obs.Metrics.create () in
                Necofuzz.Obs.Metrics.set_gauge r "worker/up" 1.0;
                r)
          in
          Necofuzz.Obs.Serve.publish board ~path:"/metrics"
            (Necofuzz.Obs.Serve.prometheus (local_prometheus ~target regs));
          Necofuzz.Obs.Serve.publish board ~path:"/status"
            (Necofuzz.Obs.Serve.json
               (local_status_json ~target ~jobs (Array.make jobs None))))
    in
    let ablation =
      {
        Necofuzz.Executor.use_exec_harness = not no_harness;
        generation =
          (if no_validator then Necofuzz.Executor.Template
           else Necofuzz.Executor.Boundary);
        use_configurator = not no_configurator;
      }
    in
    let cfg =
      Necofuzz.campaign ~guided:(not blind) ~seed ~ablation ~fault_rate
        ~fault_seed ~target ~hours ()
    in
    let cfg =
      match checkpoint_hours with
      | Some h -> { cfg with Necofuzz.Engine.checkpoint_hours = h }
      | None -> cfg
    in
    (* Periodic human-readable progress (the --stats-interval grid for
       sequential campaigns, the sync barriers for parallel ones). *)
    let on_progress =
      match stats_interval with
      | Some _ ->
          Some
            (fun (s : Necofuzz.Engine.snapshot) ->
              Format.printf "%a@." Necofuzz.Engine.pp_snapshot s)
      | None -> None
    in
    (* Publish the status pages for a sequential campaign: the engine's
       own registry and snapshot, refreshed every ~256 events through a
       tee'd sink (reads only, on the campaign thread — inert). *)
    let publish_seq engine =
      match server with
      | None -> ()
      | Some (_, board) ->
          Necofuzz.Obs.Serve.publish board ~path:"/metrics"
            (Necofuzz.Obs.Serve.prometheus
               (local_prometheus ~target [ Necofuzz.Engine.metrics engine ]));
          Necofuzz.Obs.Serve.publish board ~path:"/status"
            (Necofuzz.Obs.Serve.json
               (local_status_json ~target ~jobs:1
                  [| Some (Necofuzz.Engine.snapshot engine) |]))
    in
    let run_sequential engine =
      let sink =
        match server with
        | None -> sink
        | Some _ ->
            let n = ref 0 in
            Necofuzz.Obs.Sink.tee
              [
                sink;
                Necofuzz.Obs.Sink.callback (fun ~ts_us:_ ~worker:_ _ ->
                    incr n;
                    if !n land 255 = 0 then publish_seq engine);
              ]
      in
      Necofuzz.Engine.set_sink engine sink;
      publish_seq engine;
      let r =
        Necofuzz.Engine.run_from ?checkpoint_dir ?stats_dir
          ?stats_hours:stats_interval ?on_progress ~batch engine
      in
      publish_seq engine;
      r
    in
    let r =
      match resume with
      | Some file -> (
          match Necofuzz.Engine.restore file with
          | Error msg ->
              Format.eprintf "necofuzz: cannot resume from %s: %s@." file msg;
              exit 1
          | Ok engine ->
              let snap = Necofuzz.Engine.snapshot engine in
              Format.printf
                "resuming campaign from %s (%.1f virtual hours, %d execs)...@."
                file snap.virtual_hours snap.snap_execs;
              run_sequential engine)
      | None ->
          Format.printf "fuzzing %s for %.1f virtual hours (seed %d%s%s)...@."
            (Necofuzz.Agent.target_name target)
            hours seed
            (if jobs > 1 then Printf.sprintf ", %d workers" jobs else "")
            (if fault_rate > 0.0 then
               Printf.sprintf ", fault rate %g" fault_rate
             else "");
          if jobs > 1 then
            (* Per-worker barrier snapshots feed the status pages; the
               worker registries live in their domains, so /metrics
               exposes synthetic worker/... gauges instead. *)
            let statuses = Array.make jobs None in
            let publish_par () =
              match server with
              | None -> ()
              | Some (_, board) ->
                  Necofuzz.Obs.Serve.publish board ~path:"/metrics"
                    (Necofuzz.Obs.Serve.prometheus
                       (local_prometheus ~target
                          (Array.to_list
                             (Array.map
                                (function
                                  | Some s -> gauges_of_snapshot s
                                  | None -> Necofuzz.Obs.Metrics.create ())
                                statuses))));
                  Necofuzz.Obs.Serve.publish board ~path:"/status"
                    (Necofuzz.Obs.Serve.json
                       (local_status_json ~target ~jobs statuses))
            in
            let on_sync (s : Necofuzz.Engine.snapshot) =
              Format.printf "  sync %a@." Necofuzz.Engine.pp_snapshot s;
              publish_par ();
              match stats_dir with
              | Some dir ->
                  Necofuzz.Engine.write_stats ~dir
                    ~target:(Necofuzz.Engine.target_slug target)
                    ~mode:(Necofuzz.Engine.mode_name cfg.Necofuzz.Engine.mode)
                    {
                      Necofuzz.Obs.Stats.run_time_vs = s.virtual_hours *. 3600.0;
                      execs = s.snap_execs;
                      execs_per_sec = s.execs_per_sec;
                      paths_total = s.queue;
                      saved_crashes = s.snap_crashes;
                      restarts = s.snap_restarts;
                      coverage_pct = s.coverage_pct;
                    }
              | None -> ()
            in
            let options =
              {
                Necofuzz.Engine.default_options with
                differential;
                corpus;
                sync_hours;
                batch;
                obs = sink;
                on_sync = Some on_sync;
                on_worker_status =
                  (match server with
                  | None -> None
                  | Some _ ->
                      Some (fun ~worker s -> statuses.(worker) <- Some s));
              }
            in
            publish_par ();
            let o = Necofuzz.Engine.run_parallel ~options ~jobs cfg in
            publish_par ();
            o.Necofuzz.Engine.merged
          else run_sequential (Necofuzz.Engine.create ~differential ~corpus cfg)
    in
    Option.iter (fun (srv, _) -> Necofuzz.Obs.Serve.close srv) server;
    Necofuzz.Obs.Sink.close sink;
    Format.printf
      "done: %d executions, %d corpus entries, %d restarts, coverage %.1f%%@."
      r.execs r.corpus_size r.restarts (Necofuzz.coverage_pct r);
    (* Campaign digest: lets CI (and users) assert bit-identity across
       equivalent configurations, e.g. --batch 1 vs --batch 256. *)
    Format.printf "digest %s@." (Necofuzz.Engine.result_digest r);
    List.iter (fun c -> Format.printf "%a@." Necofuzz.pp_crash c) r.crashes;
    (* A resumed differential campaign (v3 checkpoint) carries its store
       even when --differential was not repeated on the command line. *)
    if differential || r.divergences <> [] then begin
      Format.printf "%d differential divergence(s):@."
        (List.length r.divergences);
      List.iter
        (fun d -> Format.printf "  %a@." Necofuzz.Diff.pp_divergence d)
        r.divergences
    end;
    if minimize then
      List.iter
        (fun (c : Necofuzz.crash) ->
          let marker = String.sub c.message 0 (min 24 (String.length c.message)) in
          let crashes =
            Nf_agent.Minimize.crash_predicate ~target ~ablation ~marker
          in
          let minimal, calls = Nf_agent.Minimize.minimize ~crashes c.reproducer in
          Format.printf
            "minimized %S: %d -> %d non-zero bytes (%d executions)@." marker
            (Nf_agent.Minimize.nonzero_bytes c.reproducer)
            (Nf_agent.Minimize.nonzero_bytes minimal)
            calls)
        r.crashes;
    match corpus_dir with
    | Some dir ->
        let corpus = Nf_agent.Corpus.create ~dir in
        let paths = Nf_agent.Corpus.persist_result corpus r in
        Format.printf "saved %d crash reproducer(s) under %s@."
          (List.length paths) dir
    | None -> ()
  in
  Cmd.v (Cmd.info "fuzz" ~doc:"Run a fuzzing campaign against a simulated L0 hypervisor.")
    Term.(
      const run $ target $ hours $ seed $ blind $ no_harness $ no_validator
      $ no_configurator $ corpus_dir $ corpus_kind $ minimize $ jobs
      $ sync_hours $ checkpoint_hours $ checkpoint_dir $ resume $ fault_rate
      $ fault_seed $ trace $ trace_jsonl $ stats_interval $ stats_dir
      $ differential $ serve $ status_port $ batch)

let experiment_cmd =
  let which =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"EXPERIMENT"
          ~doc:
            "One of: t1 t2 f3 t3 f4 f5 t4 t5 t6 lessons differential all.")
  in
  let full_scale =
    Arg.(value & flag & info [ "full" ] ~doc:"Paper scale (5 runs, 24-48 vh).")
  in
  let run which full_scale =
    let scale =
      if full_scale then Necofuzz.Experiments.full else Necofuzz.Experiments.quick
    in
    let ppf = Format.std_formatter in
    let module E = Necofuzz.Experiments in
    (match which with
    | "all" -> E.run_all ~scale ppf
    | "t1" -> E.print_t1 ppf
    | "t2" -> E.print_t2 ppf (E.run_t2 scale)
    | "f3" -> E.print_f3 ppf (E.run_t2 scale)
    | "t3" -> E.print_t3 ppf (E.run_t3 scale)
    | "f4" -> E.print_f4 ppf (E.run_t3 scale)
    | "f5" -> E.print_f5 ppf (E.run_f5 scale)
    | "t4" -> E.print_t4 ppf (E.run_t4 scale)
    | "t5" -> E.print_t5 ppf (E.run_t5 scale)
    | "t6" -> E.print_t6 ppf (E.run_t6 scale)
    | "lessons" -> E.print_lessons ppf (E.run_lessons scale)
    | "differential" -> E.print_differential ppf (E.run_differential scale)
    | other ->
        Format.eprintf
          "necofuzz: unknown experiment %S (expected one of: t1 t2 f3 t3 f4 \
           f5 t4 t5 t6 lessons differential all)@."
          other;
        exit 2);
    Format.pp_print_flush ppf ()
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Reproduce a table or figure from the paper.")
    Term.(const run $ which $ full_scale)

let list_checks_cmd =
  let run () =
    Format.printf "VMX VM-entry consistency checks:@.";
    List.iter
      (fun (c : Nf_cpu.Vmx_checks.check) ->
        Format.printf "  %-32s [%s] %s@." c.id
          (Nf_cpu.Vmx_checks.group_name c.group)
          c.doc)
      Nf_cpu.Vmx_checks.all;
    Format.printf "@.SVM VMRUN consistency checks:@.";
    List.iter
      (fun (c : Nf_cpu.Svm_checks.check) ->
        Format.printf "  %-32s %s@." c.id c.doc)
      Nf_cpu.Svm_checks.all
  in
  Cmd.v
    (Cmd.info "list-checks"
       ~doc:"List the architectural consistency checks in the model.")
    Term.(const run $ const ())

let validate_model_cmd =
  let samples =
    Arg.(
      value & opt int 10000
      & info [ "samples" ] ~docv:"N" ~doc:"Boundary states to test.")
  in
  let run samples =
    let report =
      Necofuzz.Oracle_campaign.run ~samples ~caps:Nf_cpu.Vmx_caps.alder_lake
        ~seed:1 ()
    in
    Format.printf "%a" Necofuzz.Oracle_campaign.pp report;
    Format.printf "@.legacy-Bochs regression (the two bugs of §4.3):@.";
    List.iter
      (fun (name, exposed) ->
        Format.printf "  %-45s %s@." name
          (if exposed then "exposed by the oracle" else "NOT exposed"))
      (Necofuzz.Oracle_campaign.run_with_legacy_bochs_checks
         ~caps:Nf_cpu.Vmx_caps.alder_lake ())
  in
  Cmd.v
    (Cmd.info "validate-model"
       ~doc:
         "Differential-test the VM state validator against the hardware           oracle (the self-correction loop of the paper's Sec. 3.4).")
    Term.(const run $ samples)

(* The distributed fleet.  A single command with a positional verb
   (rather than a nested Cmd.group) so unknown subcommands follow the
   repo-wide usage-error convention: a "necofuzz: ..." diagnostic and
   exit 2. *)
let fleet_cmd =
  let verb =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"VERB"
          ~doc:
            "$(b,lead) listens on --listen and merges a fleet campaign; \
             $(b,work) connects a worker to --connect; $(b,status) fetches a \
             running leader's /status page (address as second positional \
             argument or --connect); $(b,golden) runs the equivalent \
             in-process campaign (Engine.run_parallel) and prints the \
             reference digest.")
  in
  let status_addr =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"ADDR"
          ~doc:
            "For $(b,status): the leader's status-server address (unix:PATH \
             or tcp:HOST:PORT).")
  in
  let watch =
    Arg.(
      value & flag
      & info [ "watch" ]
          ~doc:"With $(b,status): refresh every 2 seconds until interrupted.")
  in
  let listen =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:"Leader listen address: unix:PATH or tcp:HOST:PORT.")
  in
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:"Leader address a worker connects to: unix:PATH or \
                tcp:HOST:PORT.")
  in
  let jobs =
    Arg.(
      value & opt int 2
      & info [ "jobs"; "j" ] ~docv:"N" ~doc:"Fleet size (worker slots).")
  in
  let target =
    Arg.(
      value
      & opt target_conv Necofuzz.Kvm_intel
      & info [ "target"; "t" ] ~docv:"TARGET"
          ~doc:"L0 hypervisor: kvm-intel, kvm-amd, xen-intel, xen-amd, vbox.")
  in
  let hours =
    Arg.(
      value & opt float 12.0
      & info [ "hours" ] ~docv:"H" ~doc:"Virtual campaign duration in hours.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")
  in
  let sync_hours =
    Arg.(
      value
      & opt (some float) None
      & info [ "sync-hours" ] ~docv:"H"
          ~doc:"Barrier pitch in virtual hours (default: the checkpoint \
                interval).")
  in
  let timeout_ms =
    Arg.(
      value & opt int 30_000
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:"Heartbeat/retransmission timeout in milliseconds (leader: \
                silence before a worker is presumed dead; worker: wait \
                before re-sending a request).")
  in
  let fault_rate =
    Arg.(
      value & opt float 0.0
      & info [ "fault-rate" ] ~docv:"R"
          ~doc:"Worker-side wire-fault injection probability per frame \
                (chaos testing; the merged digest must not change).")
  in
  let fault_seed =
    Arg.(
      value & opt int 0
      & info [ "fault-seed" ] ~docv:"N" ~doc:"Wire-fault injection seed.")
  in
  let worker_slot =
    Arg.(
      value
      & opt (some int) None
      & info [ "worker" ] ~docv:"N"
          ~doc:"Rejoin as worker slot N after a restart (resyncs from the \
                leader's barrier checkpoint).")
  in
  let differential =
    Arg.(
      value & flag
      & info [ "differential" ]
          ~doc:"Run the fleet campaign with the cross-hypervisor \
                differential oracle enabled.")
  in
  let serve =
    Arg.(
      value
      & opt (some string) None
      & info [ "serve" ] ~docv:"ADDR"
          ~doc:
            "Leader: serve live fleet status over HTTP ($(b,/metrics), \
             $(b,/status), $(b,/healthz)) on ADDR (unix:PATH or \
             tcp:HOST:PORT) while the campaign runs.")
  in
  let status_port =
    Arg.(
      value
      & opt (some int) None
      & info [ "status-port" ] ~docv:"PORT"
          ~doc:
            "Shorthand for --serve tcp:127.0.0.1:PORT (mutually exclusive \
             with --serve).")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Leader: write the merged distributed trace — every worker's \
             streamed spans plus the leader's supervision events, one \
             Chrome-trace process lane per worker — to FILE.")
  in
  let flight_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight-dir" ] ~docv:"DIR"
          ~doc:
            "Leader: arm the crash flight recorder; on a host crash, worker \
             abandonment or a wire-fault burst it dumps the last events per \
             worker to DIR/flight-<reason>.jsonl.")
  in
  let no_telemetry =
    Arg.(
      value & flag
      & info [ "no-telemetry" ]
          ~doc:
            "Worker: do not stream live status frames and trace spans to \
             the leader (v1-style wire traffic; the merged campaign digest \
             is identical either way).")
  in
  let run verb listen connect jobs target hours seed sync_hours timeout_ms
      fault_rate fault_seed worker_slot differential status_addr watch serve
      status_port trace flight_dir no_telemetry =
    if jobs < 1 then begin
      Format.eprintf "necofuzz: --jobs must be at least 1 (got %d)@." jobs;
      exit 2
    end;
    if hours <= 0.0 then begin
      Format.eprintf "necofuzz: --hours must be positive (got %g)@." hours;
      exit 2
    end;
    (match sync_hours with
    | Some h when h <= 0.0 ->
        Format.eprintf "necofuzz: --sync-hours must be positive (got %g)@." h;
        exit 2
    | _ -> ());
    if not (fault_rate >= 0.0 && fault_rate <= 1.0) then begin
      Format.eprintf "necofuzz: --fault-rate must be within [0, 1] (got %g)@."
        fault_rate;
      exit 2
    end;
    if timeout_ms < 1 then begin
      Format.eprintf "necofuzz: --timeout-ms must be positive (got %d)@."
        timeout_ms;
      exit 2
    end;
    let serve_addr = resolve_serve_addr ~serve ~status_port in
    let addr_of flag = function
      | None ->
          Format.eprintf "necofuzz: fleet %s requires %s@." verb flag;
          exit 2
      | Some s -> (
          match Necofuzz.Fleet.parse_addr s with
          | Ok addr -> addr
          | Error msg ->
              Format.eprintf "necofuzz: %s: %s@." flag msg;
              exit 2)
    in
    let options =
      {
        Necofuzz.Engine.default_options with
        differential;
        sync_hours;
      }
    in
    let cfg () = Necofuzz.campaign ~seed ~target ~hours () in
    let report_outcome (o : Necofuzz.Fleet.outcome) =
      let r = o.fleet.merged in
      Format.printf
        "fleet done: %d executions, %d corpus entries, coverage %.1f%%@."
        r.execs r.corpus_size (Necofuzz.coverage_pct r);
      Format.printf
        "fleet stats: %d joins, %d rejoins, %d deaths, %d abandoned@."
        o.stats.joins o.stats.rejoins o.stats.deaths o.stats.abandoned;
      List.iter (fun c -> Format.printf "%a@." Necofuzz.pp_crash c) r.crashes;
      Format.printf "digest %s@." (Necofuzz.Engine.result_digest r)
    in
    match verb with
    | "lead" -> (
        let addr = addr_of "--listen" listen in
        (match flight_dir with
        | Some dir -> (
            match Necofuzz.Persist.mkdir_p dir with
            | Ok () -> ()
            | Error msg ->
                Format.eprintf "necofuzz: --flight-dir: %s@." msg;
                exit 1)
        | None -> ());
        let trace_sink =
          match trace with
          | Some path -> Necofuzz.Obs.Sink.chrome_trace ~lanes:true ~path ()
          | None -> Necofuzz.Obs.Sink.null
        in
        let flight =
          Option.map
            (fun dir -> Necofuzz.Obs.Flight.create ~dir ())
            flight_dir
        in
        let telemetry =
          {
            Necofuzz.Fleet.serve = serve_addr;
            trace = trace_sink;
            flight;
            stream = not no_telemetry;
          }
        in
        Format.printf "fleet leader: %d workers, %.1f virtual hours...@." jobs
          hours;
        let r =
          Necofuzz.Fleet.lead ~options ~telemetry ~timeout_ms ~jobs ~addr
            (cfg ())
        in
        Necofuzz.Obs.Sink.close trace_sink;
        Option.iter
          (fun f ->
            List.iter
              (fun (reason, path) ->
                Format.printf "flight recorder: %s -> %s@." reason path)
              (Necofuzz.Obs.Flight.dumps f))
          flight;
        match r with
        | Ok o -> report_outcome o
        | Error msg ->
            Format.eprintf "necofuzz: %s@." msg;
            exit 1)
    | "work" -> (
        let addr = addr_of "--connect" connect in
        match
          Necofuzz.Fleet.work ~timeout_ms ~fault_rate ~fault_seed
            ~telemetry:(not no_telemetry) ?prev:worker_slot ~addr ()
        with
        | Ok () -> Format.printf "worker done@."
        | Error msg ->
            Format.eprintf "necofuzz: %s@." msg;
            exit 1)
    | "status" ->
        let addr =
          match (status_addr, connect) with
          | Some s, _ | None, Some s -> (
              match Necofuzz.Fleet.parse_addr s with
              | Ok a -> a
              | Error msg ->
                  Format.eprintf "necofuzz: fleet status: %s@." msg;
                  exit 2)
          | None, None ->
              Format.eprintf
                "necofuzz: fleet status requires an address (second \
                 positional argument or --connect)@.";
              exit 2
        in
        let fetch () =
          match Necofuzz.Obs.Serve.get ~addr ~path:"/status" with
          | Ok { Necofuzz.Obs.Serve.status = 200; body; _ } ->
              print_string body;
              if body = "" || body.[String.length body - 1] <> '\n' then
                print_newline ();
              flush stdout
          | Ok r ->
              Format.eprintf "necofuzz: fleet status: HTTP %d@."
                r.Necofuzz.Obs.Serve.status;
              exit 1
          | Error msg ->
              Format.eprintf "necofuzz: fleet status: %s@." msg;
              exit 1
        in
        if watch then
          while true do
            fetch ();
            Unix.sleepf 2.0
          done
        else fetch ()
    | "golden" ->
        (* The reference: the same campaign run in-process.  A fleet
           leader over any transport must print this exact digest. *)
        let o = Necofuzz.Engine.run_parallel ~options ~jobs (cfg ()) in
        Format.printf "digest %s@." (Necofuzz.Engine.result_digest o.merged)
    | other ->
        Format.eprintf
          "necofuzz: unknown fleet verb %S (expected lead, work, status or \
           golden)@."
          other;
        exit 2
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Distributed fuzzing fleet: a leader/worker protocol whose merged \
          campaign is bit-identical to the in-process parallel runner.")
    Term.(
      const run $ verb $ listen $ connect $ jobs $ target $ hours $ seed
      $ sync_hours $ timeout_ms $ fault_rate $ fault_seed $ worker_slot
      $ differential $ status_addr $ watch $ serve $ status_port $ trace
      $ flight_dir $ no_telemetry)

let () =
  let info =
    Cmd.info "necofuzz" ~version:"1.0.0"
      ~doc:"Fuzzing nested virtualization via fuzz-harness VMs (simulated substrate)"
  in
  exit (Cmd.eval (Cmd.group info
          [ fuzz_cmd; experiment_cmd; list_checks_cmd; validate_model_cmd;
            fleet_cmd ]))
